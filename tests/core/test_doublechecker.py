"""DoubleChecker's execution modes end to end."""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.core.static_info import StaticTransactionInfo
from repro.errors import OutOfMemoryBudget
from repro.runtime.ops import Compute, Invoke, Read, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler

from tests.util import counter_program, spec_for


def scheduler(seed=1):
    return RandomScheduler(seed=seed, switch_prob=0.7)


class TestSingleRun:
    def test_detects_violation(self):
        program = counter_program(threads=2, iterations=12)
        checker = DoubleChecker(spec_for(program))
        result = checker.run_single(program, scheduler())
        assert result.blamed_methods == {"rmw"}
        assert result.pcd_stats is not None
        assert result.pcd_stats.cycles_found > 0

    def test_clean_program_reports_nothing(self):
        program = counter_program(threads=2, iterations=12, locked=True)
        checker = DoubleChecker(spec_for(program))
        result = checker.run_single(program, scheduler())
        assert result.blamed_methods == set()

    def test_stats_populated(self):
        program = counter_program(threads=2, iterations=8)
        result = DoubleChecker(spec_for(program)).run_single(
            program, scheduler()
        )
        assert result.execution.steps > 0
        assert result.icd_stats.instrumented_accesses > 0
        assert result.octet_stats.barriers > 0
        assert result.tx_stats.regular_transactions == 16
        assert result.elapsed_seconds > 0


class TestMultiRun:
    def test_first_run_produces_static_info(self):
        program = counter_program(threads=2, iterations=12)
        checker = DoubleChecker(spec_for(program))
        first = checker.run_first(program, scheduler())
        assert "rmw" in first.static_info.methods
        assert first.icd_stats.log_entries == 0

    def test_second_run_detects_with_info(self):
        checker = DoubleChecker(
            spec_for(counter_program(threads=2, iterations=12))
        )
        info = StaticTransactionInfo(frozenset({"rmw"}), True)
        result = checker.run_second(
            counter_program(threads=2, iterations=12), info, scheduler()
        )
        assert result.blamed_methods == {"rmw"}

    def test_second_run_with_empty_info_instruments_nothing(self):
        checker = DoubleChecker(
            spec_for(counter_program(threads=2, iterations=12))
        )
        result = checker.run_second(
            counter_program(threads=2, iterations=12),
            StaticTransactionInfo.empty(),
            scheduler(),
        )
        assert result.icd_stats.instrumented_accesses == 0
        assert result.tx_stats.skipped_accesses > 0
        assert result.blamed_methods == set()

    def test_second_run_skips_unidentified_methods(self):
        """A benign method outside the static set must not be
        instrumented."""
        program = counter_program(threads=2, iterations=6)
        checker = DoubleChecker(spec_for(program))
        info = StaticTransactionInfo(frozenset({"not_rmw"}), False)
        result = checker.run_second(program, info, scheduler())
        assert result.tx_stats.unmonitored_transactions > 0

    def test_full_pipeline(self):
        factory = lambda: counter_program(threads=2, iterations=12)
        checker = DoubleChecker(spec_for(factory()))
        result = checker.run_multi(
            factory,
            first_trials=3,
            scheduler_factory=lambda t: scheduler(seed=100 + t),
            second_scheduler=scheduler(seed=999),
        )
        assert len(result.first_runs) == 3
        assert "rmw" in result.static_info.methods
        assert result.violations.blamed_methods() == {"rmw"}

    def test_always_instrument_unary_variant(self):
        program = counter_program(threads=2, iterations=8)
        checker = DoubleChecker(spec_for(program))
        info = StaticTransactionInfo(frozenset({"rmw"}), False)
        restricted = checker.run_second(
            counter_program(threads=2, iterations=8), info, scheduler()
        )
        unconditional = checker.run_second(
            counter_program(threads=2, iterations=8),
            info,
            scheduler(),
            always_instrument_unary=True,
        )
        assert (
            unconditional.tx_stats.unary_accesses
            >= restricted.tx_stats.unary_accesses
        )


class TestPcdOnly:
    def test_finds_same_violations_as_single(self):
        def run(mode):
            program = counter_program(threads=2, iterations=12)
            checker = DoubleChecker(spec_for(program))
            if mode == "single":
                return checker.run_single(program, scheduler(seed=7))
            return checker.run_pcd_only(program, scheduler(seed=7))

        assert run("single").blamed_methods == run("pcd").blamed_methods

    def test_processes_every_transaction(self):
        program = counter_program(threads=2, iterations=10)
        checker = DoubleChecker(spec_for(program))
        result = checker.run_pcd_only(program, scheduler())
        single = DoubleChecker(spec_for(counter_program(threads=2, iterations=10)))
        baseline = single.run_single(
            counter_program(threads=2, iterations=10), scheduler()
        )
        assert (
            result.pcd_stats.transactions_processed
            >= baseline.pcd_stats.transactions_processed
        )

    def test_memory_budget_reproduces_oom(self):
        program = counter_program(threads=3, iterations=60)
        checker = DoubleChecker(spec_for(program), pcd_memory_budget=50)
        with pytest.raises(OutOfMemoryBudget):
            checker.run_pcd_only(program, scheduler())


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run():
            program = counter_program(threads=3, iterations=15)
            checker = DoubleChecker(spec_for(program))
            result = checker.run_single(program, scheduler(seed=42))
            return (
                result.blamed_methods,
                result.icd_stats.idg_edges,
                result.icd_stats.sccs,
            )

        assert run() == run()
