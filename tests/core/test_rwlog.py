"""Read/write logs and duplicate elision."""

from repro.core.rwlog import (
    AccessEntry,
    EdgeMark,
    ElisionFilter,
    ReadWriteLog,
)
from repro.runtime.events import AccessKind

R, W = AccessKind.READ, AccessKind.WRITE


class TestReadWriteLog:
    def test_append_access_returns_index(self):
        log = ReadWriteLog()
        assert log.append_access(R, 1, "f", 10, "m@0") == 0
        assert log.append_access(W, 1, "f", 11, "m@1") == 1
        assert len(log) == 2
        assert log.access_count() == 2

    def test_edge_marks_interleave(self):
        log = ReadWriteLog()
        log.append_access(R, 1, "f", 10, "m@0")
        index = log.append_mark(7, True, 11)
        assert index == 1
        assert isinstance(log.entries[1], EdgeMark)
        assert log.access_count() == 1

    def test_entry_address(self):
        entry = AccessEntry(R, 3, "g", 5, "m@0")
        assert entry.address == (3, "g")

    def test_entry_address_precomputed_not_a_property(self):
        """The address is stored at construction (one tuple per entry,
        or zero when the caller passes an interned one) — PCD reads it
        for every replayed entry."""
        interned = (3, "g")
        entry = AccessEntry(R, 3, "g", 5, "m@0", interned)
        assert entry.address is interned
        # same instance every read; a property allocated a fresh tuple
        assert entry.address is entry.address

    def test_append_access_passes_interned_address_through(self):
        log = ReadWriteLog()
        interned = (1, "f")
        log.append_access(R, 1, "f", 10, "m@0", interned)
        assert log.entries[0].address is interned


class TestElision:
    def test_duplicate_read_elided(self):
        f = ElisionFilter()
        assert f.should_log("T", 1, "f", R)
        assert not f.should_log("T", 1, "f", R)
        assert f.stats.elided == 1

    def test_duplicate_write_elided(self):
        f = ElisionFilter()
        assert f.should_log("T", 1, "f", W)
        assert not f.should_log("T", 1, "f", W)

    def test_read_after_write_elided(self):
        """A read adds nothing after a same-window write."""
        f = ElisionFilter()
        assert f.should_log("T", 1, "f", W)
        assert not f.should_log("T", 1, "f", R)

    def test_write_after_read_not_elided(self):
        f = ElisionFilter()
        assert f.should_log("T", 1, "f", R)
        assert f.should_log("T", 1, "f", W)

    def test_bump_opens_new_window(self):
        f = ElisionFilter()
        assert f.should_log("T", 1, "f", R)
        f.bump("T")
        assert f.should_log("T", 1, "f", R)

    def test_windows_are_per_thread(self):
        f = ElisionFilter()
        assert f.should_log("T1", 1, "f", R)
        assert f.should_log("T2", 1, "f", R)
        f.bump("T1")
        assert f.should_log("T1", 1, "f", R)
        assert not f.should_log("T2", 1, "f", R)

    def test_distinct_fields_not_elided(self):
        f = ElisionFilter()
        assert f.should_log("T", 1, "f", R)
        assert f.should_log("T", 1, "g", R)
        assert f.should_log("T", 2, "f", R)

    def test_stats_count_both_sides(self):
        f = ElisionFilter()
        f.should_log("T", 1, "f", R)
        f.should_log("T", 1, "f", R)
        f.should_log("T", 1, "f", W)
        assert f.stats.logged == 2
        assert f.stats.elided == 1

    def test_should_log_addr_is_should_log_on_a_prebuilt_address(self):
        """The hot-path entry point: same decisions, same stats."""
        by_key = ElisionFilter()
        by_addr = ElisionFilter()
        accesses = [
            ("T1", 1, "f", R), ("T1", 1, "f", R), ("T1", 1, "f", W),
            ("T2", 1, "f", W), ("T2", 1, "f", R), ("T1", 2, "g", R),
        ]
        for thread, oid, fieldname, kind in accesses:
            expected = by_key.should_log(thread, oid, fieldname, kind)
            got = by_addr.should_log_addr(thread, (oid, fieldname), kind)
            assert got == expected
        by_addr.bump("T1")
        by_key.bump("T1")
        assert by_addr.should_log_addr("T1", (1, "f"), R) == by_key.should_log(
            "T1", 1, "f", R
        )
        assert (by_addr.stats.logged, by_addr.stats.elided) == (
            by_key.stats.logged, by_key.stats.elided
        )
