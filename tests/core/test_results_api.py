"""Result-object ergonomics: the fields downstream users consume."""

from repro.core.doublechecker import DoubleChecker
from repro.runtime.scheduler import RandomScheduler

from tests.util import counter_program, spec_for


def test_single_run_result_surface():
    program = counter_program(threads=2, iterations=8)
    result = DoubleChecker(spec_for(program)).run_single(
        program, RandomScheduler(seed=2, switch_prob=0.6)
    )
    # the documented stat groups are all populated
    assert result.execution.steps > 0
    assert result.icd_stats.instrumented_accesses > 0
    assert result.octet_stats.barriers == result.icd_stats.instrumented_accesses
    assert result.tx_stats.regular_transactions > 0
    assert result.pcd_stats is not None
    assert isinstance(result.protocol_stats, dict)
    assert {"rounds", "explicit_responses", "implicit_responses"} <= set(
        result.protocol_stats
    )
    assert result.elision_stats.logged > 0
    assert result.blamed_methods == result.violations.blamed_methods()


def test_first_run_result_surface():
    program = counter_program(threads=2, iterations=8)
    result = DoubleChecker(spec_for(program)).run_first(
        program, RandomScheduler(seed=2, switch_prob=0.6)
    )
    assert result.static_info is not None
    assert result.icd_stats.log_entries == 0
    assert result.elapsed_seconds > 0


def test_multi_run_result_surface():
    result = DoubleChecker(
        spec_for(counter_program(threads=2, iterations=8))
    ).run_multi(
        lambda: counter_program(threads=2, iterations=8),
        first_trials=2,
        scheduler_factory=lambda t: RandomScheduler(seed=t, switch_prob=0.6),
        second_scheduler=RandomScheduler(seed=9, switch_prob=0.6),
    )
    assert result.violations is result.second_run.violations
    assert len(result.first_runs) == 2
    assert result.static_info.methods or result.static_info.any_unary


def test_octet_stats_consistency():
    program = counter_program(threads=2, iterations=8)
    result = DoubleChecker(spec_for(program)).run_single(
        program, RandomScheduler(seed=2, switch_prob=0.6)
    )
    stats = result.octet_stats
    assert stats.barriers == stats.fast_path + stats.slow_path()
    assert stats.conflicting == sum(stats.conflicting_by_kind.values())
