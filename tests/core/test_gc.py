"""Transaction-graph garbage collection."""

import itertools

from repro.core.gc import TransactionCollector
from repro.core.transactions import IdgEdge, Transaction, TransactionManager
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap
from repro.spec.specification import AtomicitySpecification

from tests.util import counter_program, spec_for

_seq = itertools.count(1)


def make_manager():
    methods = frozenset({"m", "entry"})
    spec = AtomicitySpecification(methods, frozenset({"entry"}))
    return TransactionManager(spec)


def access(thread):
    return AccessEvent(
        seq=next(_seq),
        thread_name=thread,
        obj=Heap().alloc("o"),
        fieldname="f",
        kind=AccessKind.READ,
        is_sync=False,
        is_array=False,
        site=Site("m", 0),
    )


def connect(src, dst, order):
    edge = IdgEdge(src, dst, "t", order)
    src.out_edges.append(edge)
    dst.in_edges.append(edge)


def test_old_unreferenced_transactions_collected():
    manager = make_manager()
    old = manager.transaction_for_access(access("T1"))
    old.edge_touched = True  # force the next access into a new tx
    current = manager.transaction_for_access(access("T1"))
    collector = TransactionCollector(manager)
    swept = collector.collect()
    # `old` is not forward-reachable from the latest transaction
    assert swept == 1
    assert old.collected
    assert manager.all_transactions == [current]


def test_pinned_transactions_kept_alive():
    manager = make_manager()
    old = manager.transaction_for_access(access("T1"))
    old.edge_touched = True
    manager.transaction_for_access(access("T1"))
    collector = TransactionCollector(manager)
    swept = collector.collect(pinned=[old])  # e.g. ICD's lastRdEx
    assert swept == 0
    assert not old.collected


def test_pinned_transactions_not_traversed():
    """A pinned root keeps itself alive but not its forward cone
    (otherwise a stale lastRdEx would pin every newer transaction on
    its thread via the intra chain)."""
    manager = make_manager()
    pinned = manager.transaction_for_access(access("T1"))
    pinned.edge_touched = True
    middle = manager.transaction_for_access(access("T1"))
    middle.edge_touched = True
    manager.transaction_for_access(access("T1"))  # latest stays alive
    collector = TransactionCollector(manager)
    swept = collector.collect(pinned=[pinned])
    assert swept == 1
    assert middle.collected
    assert not pinned.collected


def test_edge_reachable_transactions_survive():
    manager = make_manager()
    old = manager.transaction_for_access(access("T1"))
    old.edge_touched = True
    current = manager.transaction_for_access(access("T1"))
    # old is reachable from the current transaction through a cross edge
    other = manager.transaction_for_access(access("T2"))
    connect(other, old, 1)
    assert TransactionCollector(manager).collect() == 0


def test_dead_edges_unlinked_from_survivors():
    manager = make_manager()
    dead = manager.transaction_for_access(access("T1"))
    dead.edge_touched = True
    live = manager.transaction_for_access(access("T1"))
    connect(dead, live, 1)
    TransactionCollector(manager).collect()
    assert dead.collected
    assert live.in_edges == []
    assert live.intra_prev is None


def test_logs_freed_on_collection():
    from repro.core.rwlog import ReadWriteLog

    manager = make_manager()
    dead = manager.transaction_for_access(access("T1"))
    dead.log = ReadWriteLog()
    dead.log.append_access(AccessKind.READ, 1, "f", 1, "s")
    dead.edge_touched = True
    manager.transaction_for_access(access("T1"))
    collector = TransactionCollector(manager)
    collector.collect()
    assert dead.log is None
    assert collector.stats.log_entries_collected == 1


def test_collection_stats_and_peaks():
    manager = make_manager()
    for _ in range(5):
        tx = manager.transaction_for_access(access("T1"))
        tx.edge_touched = True
    collector = TransactionCollector(manager)
    collector.note_peak()
    assert collector.stats.peak_live_transactions == 5
    swept = collector.collect()
    assert swept == 4  # everything but the latest
    assert collector.stats.collections == 1
    assert collector.stats.transactions_collected == 4


def test_gc_does_not_change_detection_results():
    """End-to-end: violations identical with GC on and off."""
    from repro.core.doublechecker import DoubleChecker
    from repro.runtime.scheduler import RandomScheduler

    def blamed(gc_interval):
        program = counter_program(threads=3, iterations=20)
        checker = DoubleChecker(spec_for(program), gc_interval=gc_interval)
        result = checker.run_single(
            program, RandomScheduler(seed=77, switch_prob=0.7)
        )
        return result.blamed_methods

    assert blamed(None) == blamed(4)


def test_gc_actually_collects_in_real_runs():
    from repro.core.doublechecker import DoubleChecker
    from repro.runtime.scheduler import RandomScheduler

    program = counter_program(threads=3, iterations=40)
    checker = DoubleChecker(spec_for(program), gc_interval=8)
    result = checker.run_single(
        program, RandomScheduler(seed=5, switch_prob=0.6)
    )
    assert result.gc_stats.transactions_collected > 0
