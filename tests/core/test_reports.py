"""Violation records and summaries."""

from repro.core.reports import ViolationRecord, ViolationSummary


def record(method="m", tx_id=1, detector="pcd"):
    return ViolationRecord(
        blamed_method=method,
        blamed_tx_id=tx_id,
        thread_name="T1",
        cycle_methods=(method, "other"),
        cycle_tx_ids=(tx_id, tx_id + 1),
        detector=detector,
    )


def test_static_dedup_by_method():
    summary = ViolationSummary()
    summary.add(record("m", 1))
    summary.add(record("m", 2))
    summary.add(record("n", 3))
    assert summary.dynamic_count() == 3
    assert summary.static_count() == 2
    assert summary.blamed_methods() == {"m", "n"}


def test_bool_and_merge():
    summary = ViolationSummary()
    assert not summary
    summary.add(record())
    assert summary
    other = ViolationSummary()
    other.add(record("x"))
    summary.merge(other)
    assert summary.blamed_methods() == {"m", "x"}


def test_cycle_size():
    assert record().cycle_size == 2


def test_extend():
    summary = ViolationSummary()
    summary.extend([record("a"), record("b")])
    assert summary.static_count() == 2
