"""ICD experiment knobs end-to-end through DoubleChecker."""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.errors import OutOfMemoryBudget
from repro.runtime.ops import ArrayRead, ArrayWrite, Invoke
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler

from tests.util import counter_program, spec_for


def array_program(length=6):
    program = Program("arr")
    arr = program.add_global_array("arr", length)

    def sweep(ctx, offset):
        for i in range(length):
            value = yield ArrayRead(arr, (i + offset) % length)
            yield ArrayWrite(arr, (i + offset) % length, (value or 0) + 1)

    def worker(ctx, offset):
        for _ in range(8):
            yield Invoke("sweep", (offset,))

    program.method(sweep, name="sweep")
    program.method(worker, name="worker")
    program.mark_entry("worker")
    program.add_thread("A", "worker", (0,))
    program.add_thread("B", "worker", (3,))
    return program


def scheduler(seed=1):
    return RandomScheduler(seed=seed, switch_prob=0.7)


class TestArrayInstrumentation:
    def test_element_granularity_is_precise(self):
        """Distinct elements never create precise cycles even when
        instrumented at element granularity... unless threads overlap:
        offsets 0/3 over length 6 do overlap, so cycles are possible —
        the check here is that the configuration runs and reports
        through the same pipeline."""
        from repro.spec.specification import AtomicitySpecification

        program = array_program()
        spec = AtomicitySpecification.initial(program)
        checker = DoubleChecker(spec, instrument_arrays=True)
        result = checker.run_single(array_program(), scheduler())
        assert result.icd_stats.array_accesses_skipped == 0
        assert result.icd_stats.instrumented_accesses > 0

    def test_array_granularity_requires_cycle_detection_off(self):
        """Conflating elements makes ICD imprecise beyond PCD's ability
        to filter (PCD sees the conflated addresses too) — the harness
        always disables cycle detection; verify the combination runs."""
        from repro.spec.specification import AtomicitySpecification

        program = array_program()
        spec = AtomicitySpecification.initial(program)
        checker = DoubleChecker(
            spec,
            instrument_arrays=True,
            array_granularity_object=True,
            cycle_detection=False,
        )
        result = checker.run_single(array_program(), scheduler())
        assert result.icd_stats.sccs == 0

    def test_uninstrumented_arrays_cost_nothing(self):
        from repro.spec.specification import AtomicitySpecification

        program = array_program()
        spec = AtomicitySpecification.initial(program)
        result = DoubleChecker(spec).run_single(array_program(), scheduler())
        assert result.icd_stats.array_accesses_skipped > 0
        assert result.octet_stats.barriers < result.execution.access_count


class TestBudgetAndGcInterplay:
    def test_gc_keeps_budget_satisfied(self):
        """A budget that fails without collection passes with it."""
        program_args = dict(threads=3, iterations=60)
        spec = spec_for(counter_program(**program_args))
        budget = 700
        with pytest.raises(OutOfMemoryBudget):
            DoubleChecker(
                spec, icd_memory_budget=budget, gc_interval=None
            ).run_single(counter_program(**program_args), scheduler())
        DoubleChecker(
            spec, icd_memory_budget=budget, gc_interval=8
        ).run_single(counter_program(**program_args), scheduler())

    def test_eager_scc_through_front_end(self):
        program = counter_program(threads=2, iterations=10)
        spec = spec_for(program)
        lazy = DoubleChecker(spec).run_single(
            counter_program(threads=2, iterations=10), scheduler(5)
        )
        eager = DoubleChecker(spec, eager_scc=True).run_single(
            counter_program(threads=2, iterations=10), scheduler(5)
        )
        assert eager.blamed_methods == lazy.blamed_methods
        assert (
            eager.icd_stats.scc_computations >= lazy.icd_stats.scc_computations
        )

    def test_run_multi_with_default_schedulers(self):
        spec = spec_for(counter_program(threads=2, iterations=8))
        result = DoubleChecker(spec).run_multi(
            lambda: counter_program(threads=2, iterations=8), first_trials=2
        )
        assert len(result.first_runs) == 2
