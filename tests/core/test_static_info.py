"""Static transaction information (multi-run mode's hand-off)."""

from repro.core.static_info import StaticTransactionInfo
from repro.core.transactions import Transaction


def tx(tx_id, method, unary=False, thread="T1"):
    return Transaction(tx_id, thread, method, unary)


def test_from_components_collects_methods_and_unary_flag():
    info = StaticTransactionInfo.from_components(
        [[tx(1, "a"), tx(2, "<unary>", unary=True)], [tx(3, "b")]]
    )
    assert info.methods == frozenset({"a", "b"})
    assert info.any_unary


def test_no_unary_flag_without_unary_members():
    info = StaticTransactionInfo.from_components([[tx(1, "a")]])
    assert not info.any_unary


def test_union():
    a = StaticTransactionInfo(frozenset({"x"}), False)
    b = StaticTransactionInfo(frozenset({"y"}), True)
    combined = a.union(b)
    assert combined.methods == frozenset({"x", "y"})
    assert combined.any_unary


def test_union_all_empty():
    assert StaticTransactionInfo.union_all([]).is_empty()


def test_monitors_method():
    info = StaticTransactionInfo(frozenset({"x"}), False)
    assert info.monitors_method("x")
    assert not info.monitors_method("y")


def test_json_roundtrip():
    info = StaticTransactionInfo(frozenset({"b", "a"}), True)
    parsed = StaticTransactionInfo.from_json(info.to_json())
    assert parsed == info


def test_empty():
    info = StaticTransactionInfo.empty()
    assert info.is_empty()
    assert not info.monitors_method("anything")
