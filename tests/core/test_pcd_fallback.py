"""PCD's defensive order fallback and other edge paths.

The topological merge should never need its fallback on well-formed
input (property-tested elsewhere); these tests exercise the defensive
path directly with deliberately inconsistent anchors, plus other rare
input shapes.
"""

from repro.core.pcd import PCD
from repro.core.rwlog import ReadWriteLog
from repro.core.transactions import IdgEdge, Transaction
from repro.runtime.events import AccessKind

R, W = AccessKind.READ, AccessKind.WRITE


def make_tx(tx_id, thread):
    tx = Transaction(tx_id, thread, f"m{tx_id}", False)
    tx.finished = True
    tx.log = ReadWriteLog()
    return tx


def test_contradictory_anchors_fall_back_to_sequence_order():
    """Two edges anchored in opposite directions deadlock the merge;
    PCD must degrade to sequence order rather than fail."""
    a = make_tx(1, "T1")
    b = make_tx(2, "T2")
    # edge 1: a-source before b-sink; edge 2: b-source before a-sink —
    # but interleave the marks so each stream's front waits on the other
    e1 = IdgEdge(a, b, "x", 1)
    e2 = IdgEdge(b, a, "x", 2)
    a.log.append_mark(2, False, 1)   # a waits for e2's source...
    a.log.append_mark(1, True, 2)
    b.log.append_mark(1, False, 3)   # ...b waits for e1's source
    b.log.append_mark(2, True, 4)
    a.out_edges.append(e1)
    b.in_edges.append(e1)
    b.out_edges.append(e2)
    a.in_edges.append(e2)
    a.log.append_access(W, 1, "f", 5, "s")
    b.log.append_access(R, 1, "f", 6, "s")

    pcd = PCD()
    pcd.process([a, b])
    assert pcd.stats.order_fallbacks > 0  # survived the inconsistency


def test_empty_logs_component():
    a = make_tx(1, "T1")
    b = make_tx(2, "T2")
    assert PCD().process([a, b]) == []


def test_single_thread_component_is_trivially_serializable():
    a1 = make_tx(1, "T1")
    a2 = make_tx(2, "T1")
    a1.log.append_access(W, 1, "f", 1, "s")
    a2.log.append_access(W, 1, "f", 2, "s")
    assert PCD().process([a1, a2]) == []


def test_unary_only_cycle_blames_unary_identity():
    """When only unary transactions satisfy the blame rule, the record
    still carries the <unary> identity (refinement ignores it)."""
    a = Transaction(1, "T1", "<unary>", True)
    b = Transaction(2, "T2", "<unary>", True)
    for tx in (a, b):
        tx.finished = True
        tx.log = ReadWriteLog()
    a.log.append_access(W, 1, "f", 1, "s")
    b.log.append_access(R, 1, "f", 2, "s")
    b.log.append_access(W, 1, "f", 3, "s")
    a.log.append_access(R, 1, "f", 4, "s")
    violations = PCD().process([a, b])
    assert len(violations) == 1
    assert violations[0].blamed_method == "<unary>"


def test_mixed_unary_regular_cycle_blames_regular():
    a = Transaction(1, "T1", "real_method", False)
    b = Transaction(2, "T2", "<unary>", True)
    for tx in (a, b):
        tx.finished = True
        tx.log = ReadWriteLog()
    # make the unary tx the cycle completer (blame-rule target), yet the
    # regular member should still be preferred if it also qualifies;
    # here only b completes the cycle, so blame falls where it must
    a.log.append_access(W, 1, "f", 1, "s")
    b.log.append_access(R, 1, "f", 2, "s")
    b.log.append_access(W, 1, "g", 3, "s")
    a.log.append_access(R, 1, "g", 4, "s")
    violations = PCD().process([a, b])
    assert len(violations) == 1
    # the blame rule picks the transaction whose outgoing edge is older:
    # that is a (W f before R g); a is regular, so the preference and the
    # rule agree
    assert violations[0].blamed_method == "real_method"
