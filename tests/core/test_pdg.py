"""Precise dependence graph and incremental cycle detection."""

from repro.core.pdg import PDG, PdgEdge


def test_add_edge_assigns_creation_order():
    pdg = PDG()
    e1 = pdg.add_edge(1, 2)
    e2 = pdg.add_edge(2, 3)
    assert e1.order < e2.order
    assert pdg.edge_count == 2


def test_duplicate_edge_returns_none():
    pdg = PDG()
    assert pdg.add_edge(1, 2) is not None
    assert pdg.add_edge(1, 2) is None
    assert pdg.edge_count == 1


def test_self_edge_rejected():
    assert PDG().add_edge(1, 1) is None


def test_no_cycle_in_dag():
    pdg = PDG()
    pdg.add_edge(1, 2)
    edge = pdg.add_edge(2, 3)
    assert pdg.find_cycle_through(edge) is None


def test_two_cycle_found():
    pdg = PDG()
    e1 = pdg.add_edge(1, 2)
    e2 = pdg.add_edge(2, 1)
    cycle = pdg.find_cycle_through(e2)
    assert cycle is not None
    assert [(e.src, e.dst) for e in cycle] == [(1, 2), (2, 1)]


def test_long_cycle_path_order():
    pdg = PDG()
    pdg.add_edge(1, 2)
    pdg.add_edge(2, 3)
    pdg.add_edge(3, 4)
    closing = pdg.add_edge(4, 1)
    cycle = pdg.find_cycle_through(closing)
    assert [(e.src, e.dst) for e in cycle] == [
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 1),
    ]


def test_cycle_detection_ignores_unrelated_subgraph():
    pdg = PDG()
    pdg.add_edge(10, 11)
    pdg.add_edge(11, 10)
    edge = pdg.add_edge(1, 2)
    assert pdg.find_cycle_through(edge) is None


def test_nodes():
    pdg = PDG()
    pdg.add_edge(1, 2)
    pdg.add_edge(3, 2)
    assert pdg.nodes() == {1, 2, 3}


def test_cycle_check_counter():
    pdg = PDG()
    e = pdg.add_edge(1, 2)
    pdg.find_cycle_through(e)
    pdg.find_cycle_through(e)
    assert pdg.cycle_checks == 2
