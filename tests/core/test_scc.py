"""SCC detection over transaction graphs."""

from repro.core.scc import is_cyclic_component, scc_containing
from repro.core.transactions import IdgEdge, Transaction


def make_txs(n, thread_prefix="T"):
    txs = [
        Transaction(i + 1, f"{thread_prefix}{i + 1}", f"m{i + 1}", False)
        for i in range(n)
    ]
    for tx in txs:
        tx.finished = True
    return txs


def connect(src, dst, order=None):
    edge = IdgEdge(src, dst, "test", order or (src.tx_id * 100 + dst.tx_id))
    src.out_edges.append(edge)
    dst.in_edges.append(edge)


def test_acyclic_node_is_singleton():
    a, b = make_txs(2)
    connect(a, b)
    assert scc_containing(a) == [a]
    assert not is_cyclic_component(scc_containing(a))


def test_two_cycle():
    a, b = make_txs(2)
    connect(a, b)
    connect(b, a)
    component = scc_containing(a)
    assert set(component) == {a, b}
    assert is_cyclic_component(component)


def test_cycle_through_intra_edges():
    """A cycle can pass through a thread's intra-transaction chain."""
    a1, a2, b = make_txs(3)
    a1.thread_name = a2.thread_name = "TA"
    a1.intra_next = a2
    a2.intra_prev = a1
    connect(a2, b)
    connect(b, a1)
    component = scc_containing(b)
    assert set(component) == {a1, a2, b}


def test_unfinished_transactions_not_explored():
    a, b, c = make_txs(3)
    connect(a, b)
    connect(b, c)
    connect(c, a)
    b.finished = False
    component = scc_containing(a)
    assert component == [a]  # the cycle is invisible until b finishes


def test_collected_transactions_not_explored():
    a, b = make_txs(2)
    connect(a, b)
    connect(b, a)
    b.collected = True
    assert scc_containing(a) == [a]


def test_maximal_component_not_just_one_cycle():
    """Two overlapping cycles form one SCC."""
    a, b, c = make_txs(3)
    connect(a, b)
    connect(b, a)
    connect(b, c)
    connect(c, b)
    assert set(scc_containing(a)) == {a, b, c}


def test_nested_graph_outside_scc_excluded():
    a, b, c, d = make_txs(4)
    connect(a, b)
    connect(b, a)
    connect(b, c)  # c, d reachable but not in the SCC
    connect(c, d)
    assert set(scc_containing(a)) == {a, b}


def test_long_cycle():
    txs = make_txs(12)
    for i in range(12):
        connect(txs[i], txs[(i + 1) % 12])
    assert set(scc_containing(txs[5])) == set(txs)


def test_self_component_root_unfinished():
    (a,) = make_txs(1)
    a.finished = False
    assert scc_containing(a) == [a]


def test_deep_chain_does_not_recurse():
    """The iterative Tarjan handles chains far beyond Python's
    recursion limit."""
    txs = make_txs(5000)
    for i in range(4999):
        connect(txs[i], txs[i + 1])
    connect(txs[-1], txs[0])  # one huge cycle
    assert len(scc_containing(txs[0])) == 5000
