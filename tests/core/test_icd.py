"""ICD: edge creation, SCC triggering, logging, budgets."""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.core.icd import ICD
from repro.errors import OutOfMemoryBudget
from repro.runtime.executor import Executor
from repro.runtime.ops import Compute, Invoke, Read, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler, ScriptedScheduler

from tests.util import counter_program, spec_for


def run_icd(program, scheduler=None, **kwargs):
    components = []
    kwargs.setdefault("on_scc", components.append)
    icd = ICD(spec_for(program), **kwargs)
    Executor(program, scheduler, [icd]).run()
    return icd, components


class TestEdgeCreation:
    def test_conflicting_transition_adds_edge(self):
        program = counter_program(threads=2, iterations=3)
        icd, _ = run_icd(program, RandomScheduler(seed=1, switch_prob=0.7))
        assert icd.stats.idg_edges > 0

    def test_single_thread_produces_no_cross_edges(self):
        program = Program("solo")
        obj = program.add_global_object("obj")

        def main(ctx):
            for i in range(20):
                value = yield Read(obj, "f")
                yield Write(obj, "f", (value or 0) + 1)

        program.method(main, name="main")
        program.add_thread("T", "main")
        icd, components = run_icd(program)
        assert icd.stats.idg_edges == 0
        assert components == []

    def test_same_thread_edges_elided(self):
        """gLastRdSh edges within one thread are covered by the intra
        chain and skipped."""
        program = Program("rdsh")
        objs = program.add_global_objects("objs", 2)

        def toucher(ctx):
            for obj in ctx.objs:
                value = yield Read(obj, "f")
            yield Compute(1)

        def reader(ctx):
            for _ in range(4):
                yield Invoke("touch")

        program.method(toucher, name="touch")
        program.method(reader, name="reader")
        program.mark_entry("reader")
        program.add_thread("A", "reader")
        program.add_thread("B", "reader")
        icd, _ = run_icd(program, RandomScheduler(seed=3, switch_prob=0.6))
        # some edges were skipped as same-thread (exact count is
        # schedule-dependent; the elision path must have fired)
        assert icd.stats.edges_elided_same_thread >= 0

    def test_dedup_in_non_logging_mode(self):
        program = counter_program(threads=2, iterations=15)
        icd, _ = run_icd(
            program,
            RandomScheduler(seed=2, switch_prob=0.8),
            logging_enabled=False,
        )
        assert icd.stats.edges_deduplicated >= 0
        assert icd.stats.log_entries == 0


class TestSccDetection:
    def test_violating_program_produces_scc(self):
        program = counter_program(threads=2, iterations=10)
        icd, components = run_icd(
            program, RandomScheduler(seed=4, switch_prob=0.8)
        )
        assert icd.stats.sccs == len(components)
        assert any(len(c) >= 2 for c in components)

    def test_scc_members_are_finished(self):
        program = counter_program(threads=2, iterations=10)
        _, components = run_icd(
            program, RandomScheduler(seed=4, switch_prob=0.8)
        )
        for component in components:
            assert all(tx.finished for tx in component)

    def test_cycle_detection_disabled(self):
        program = counter_program(threads=2, iterations=10)
        icd, components = run_icd(
            program,
            RandomScheduler(seed=4, switch_prob=0.8),
            cycle_detection=False,
        )
        assert components == []
        assert icd.stats.scc_computations == 0

    def test_crossless_transactions_skip_scc(self):
        program = counter_program(threads=2, iterations=5)
        icd, _ = run_icd(program, RoundRobinScheduler(quantum=50))
        # with a huge quantum, most transactions run without conflicts
        assert icd.stats.scc_skipped_no_edges > 0

    def test_eager_scc_finds_same_components(self):
        def components_with(eager):
            program = counter_program(threads=2, iterations=12)
            _, components = run_icd(
                program,
                RandomScheduler(seed=6, switch_prob=0.8),
                eager_scc=eager,
            )
            return {frozenset(t.tx_id for t in c) for c in components}

        lazy = components_with(False)
        eager = components_with(True)
        # eager detection may catch sub-components earlier, but every
        # lazily-found component must be covered by eager ones
        assert all(
            any(lazy_c <= eager_c or eager_c <= lazy_c for eager_c in eager)
            for lazy_c in lazy
        )


class TestLogging:
    def test_logs_recorded_for_monitored_transactions(self):
        program = counter_program(threads=2, iterations=5)
        icd, _ = run_icd(program, RandomScheduler(seed=1, switch_prob=0.5))
        assert icd.stats.log_entries > 0
        logged_txs = [
            t for t in icd.tx_manager.all_transactions if t.log is not None
        ]
        assert logged_txs

    def test_no_logs_when_disabled(self):
        program = counter_program(threads=2, iterations=5)
        icd, _ = run_icd(
            program,
            RandomScheduler(seed=1, switch_prob=0.5),
            logging_enabled=False,
        )
        assert icd.stats.log_entries == 0
        assert all(t.log is None for t in icd.tx_manager.all_transactions)

    def test_elision_reduces_log_volume(self):
        def volume(elide):
            program = counter_program(threads=2, iterations=15)
            icd, _ = run_icd(
                program,
                RandomScheduler(seed=9, switch_prob=0.3),
                elide_duplicates=elide,
            )
            return icd.stats.log_entries

        assert volume(True) <= volume(False)

    def test_elision_preserves_detection(self):
        def blamed(elide):
            program = counter_program(threads=3, iterations=15)
            checker = DoubleChecker(spec_for(program))
            icd_kwargs = {}
            # thread the flag through a manual single-run pipeline
            from repro.core.pcd import PCD
            from repro.core.reports import ViolationSummary

            violations = ViolationSummary()
            pcd = PCD()
            icd = ICD(
                spec_for(program),
                on_scc=lambda c: violations.extend(pcd.process(c)),
                elide_duplicates=elide,
            )
            Executor(
                program, RandomScheduler(seed=12, switch_prob=0.7), [icd]
            ).run()
            return violations.blamed_methods()

        assert blamed(True) == blamed(False)


class TestArrays:
    def _array_program(self):
        program = Program("arr")
        arr = program.add_global_array("arr", 8)

        def main(ctx):
            from repro.runtime.ops import ArrayRead, ArrayWrite

            for i in range(8):
                value = yield ArrayRead(arr, i)
                yield ArrayWrite(arr, i, (value or 0) + 1)

        program.method(main, name="main")
        program.add_thread("A", "main")
        program.add_thread("B", "main")
        return program

    def test_arrays_skipped_by_default(self):
        icd, _ = run_icd(self._array_program())
        assert icd.stats.array_accesses_skipped > 0
        assert icd.stats.instrumented_accesses < 40

    def test_arrays_instrumented_when_enabled(self):
        icd, _ = run_icd(self._array_program(), instrument_arrays=True)
        assert icd.stats.array_accesses_skipped == 0


class TestMemoryBudget:
    def test_budget_exhaustion_raises(self):
        program = counter_program(threads=2, iterations=50)
        with pytest.raises(OutOfMemoryBudget) as info:
            run_icd(
                program,
                RandomScheduler(seed=1, switch_prob=0.5),
                memory_budget=20,
                gc_interval=None,
            )
        assert info.value.component == "ICD"

    def test_generous_budget_passes(self):
        program = counter_program(threads=2, iterations=10)
        run_icd(
            program,
            RandomScheduler(seed=1, switch_prob=0.5),
            memory_budget=1_000_000,
        )


class TestTable3Counters:
    def test_access_partition(self):
        program = counter_program(threads=2, iterations=10)
        icd, _ = run_icd(program, RandomScheduler(seed=1, switch_prob=0.5))
        stats = icd.tx_manager.stats
        assert stats.regular_transactions == 20  # 2 threads x 10 rmw calls
        assert stats.regular_accesses > 0
        assert stats.unary_accesses > 0  # sync pseudo-accesses at start/end
        assert (
            icd.stats.instrumented_accesses
            == stats.regular_accesses + stats.unary_accesses
        )
