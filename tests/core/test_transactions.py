"""Transaction demarcation and unary merging."""

import itertools

import pytest

from repro.core.transactions import (
    IdgEdge,
    Transaction,
    TransactionManager,
    UNARY_METHOD,
)
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap
from repro.spec.specification import AtomicitySpecification

_seq = itertools.count(1)


def make_spec(atomic=("atomic_m",), extra=("other",)):
    methods = frozenset(atomic) | frozenset(extra) | {"entry"}
    excluded = methods - frozenset(atomic)
    return AtomicitySpecification(methods, excluded)


def access(thread="T1", fieldname="f", kind=AccessKind.READ, obj=None):
    obj = obj if obj is not None else Heap().alloc("o")
    return AccessEvent(
        seq=next(_seq),
        thread_name=thread,
        obj=obj,
        fieldname=fieldname,
        kind=kind,
        is_sync=False,
        is_array=False,
        site=Site("m", 0),
    )


class TestRegularDemarcation:
    def test_atomic_method_starts_regular_transaction(self):
        manager = TransactionManager(make_spec())
        manager.on_method_enter("T1", "atomic_m", 1)
        tx = manager.transaction_for_access(access())
        assert tx is not None and not tx.is_unary
        assert tx.method == "atomic_m"

    def test_non_atomic_method_does_not(self):
        manager = TransactionManager(make_spec())
        manager.on_method_enter("T1", "other", 1)
        tx = manager.transaction_for_access(access())
        assert tx.is_unary

    def test_nested_atomic_methods_merge_into_outermost(self):
        manager = TransactionManager(make_spec(atomic=("outer", "inner")))
        manager.on_method_enter("T1", "outer", 1)
        outer_tx = manager.transaction_for_access(access())
        manager.on_method_enter("T1", "inner", 2)
        inner_tx = manager.transaction_for_access(access())
        assert inner_tx is outer_tx
        manager.on_method_exit("T1", "inner", 2)
        # still inside the outer transaction
        assert manager.transaction_for_access(access()) is outer_tx
        manager.on_method_exit("T1", "outer", 1)
        assert outer_tx.finished

    def test_non_atomic_callee_inherits_callers_transaction(self):
        manager = TransactionManager(make_spec())
        manager.on_method_enter("T1", "atomic_m", 1)
        tx = manager.transaction_for_access(access())
        manager.on_method_enter("T1", "other", 2)
        assert manager.transaction_for_access(access()) is tx

    def test_transaction_ends_at_matching_exit_only(self):
        manager = TransactionManager(make_spec(atomic=("atomic_m",)))
        manager.on_method_enter("T1", "atomic_m", 3)
        tx = manager.transaction_for_access(access())
        manager.on_method_exit("T1", "other", 4)   # unrelated frame
        assert not tx.finished
        manager.on_method_exit("T1", "atomic_m", 3)
        assert tx.finished

    def test_recursive_atomic_method(self):
        manager = TransactionManager(make_spec())
        manager.on_method_enter("T1", "atomic_m", 1)
        tx = manager.transaction_for_access(access())
        manager.on_method_enter("T1", "atomic_m", 2)  # recursion
        assert manager.transaction_for_access(access()) is tx
        manager.on_method_exit("T1", "atomic_m", 2)
        assert not tx.finished
        manager.on_method_exit("T1", "atomic_m", 1)
        assert tx.finished

    def test_end_callback_fires(self):
        ended = []
        manager = TransactionManager(make_spec(), on_transaction_end=ended.append)
        manager.on_method_enter("T1", "atomic_m", 1)
        manager.transaction_for_access(access())
        manager.on_method_exit("T1", "atomic_m", 1)
        assert len(ended) == 1 and ended[0].method == "atomic_m"


class TestUnaryMerging:
    def test_consecutive_unary_accesses_merge(self):
        manager = TransactionManager(make_spec())
        tx1 = manager.transaction_for_access(access())
        tx2 = manager.transaction_for_access(access())
        assert tx1 is tx2
        assert tx1.method == UNARY_METHOD
        assert manager.stats.unary_transactions == 1

    def test_edge_touch_splits_unary_transactions(self):
        manager = TransactionManager(make_spec())
        tx1 = manager.transaction_for_access(access())
        tx1.edge_touched = True
        tx2 = manager.transaction_for_access(access())
        assert tx2 is not tx1
        assert tx1.finished

    def test_regular_transaction_closes_running_unary(self):
        manager = TransactionManager(make_spec())
        unary = manager.transaction_for_access(access())
        manager.on_method_enter("T1", "atomic_m", 1)
        regular = manager.transaction_for_access(access())
        assert unary.finished
        assert not regular.is_unary

    def test_intra_thread_chain_links(self):
        manager = TransactionManager(make_spec())
        unary = manager.transaction_for_access(access())
        unary.edge_touched = True
        second = manager.transaction_for_access(access())
        assert unary.intra_next is second
        assert second.intra_prev is unary


class TestMonitoringFilters:
    def test_unmonitored_regular_accesses_skipped(self):
        manager = TransactionManager(
            make_spec(), monitor_regular=lambda m: False
        )
        manager.on_method_enter("T1", "atomic_m", 1)
        assert manager.transaction_for_access(access()) is None
        assert manager.stats.skipped_accesses == 1
        assert manager.stats.unmonitored_transactions == 1
        assert manager.stats.regular_transactions == 0

    def test_unary_monitoring_disabled(self):
        manager = TransactionManager(make_spec(), monitor_unary=False)
        assert manager.transaction_for_access(access()) is None
        assert manager.stats.skipped_accesses == 1

    def test_monitored_methods_pass(self):
        manager = TransactionManager(
            make_spec(), monitor_regular=lambda m: m == "atomic_m"
        )
        manager.on_method_enter("T1", "atomic_m", 1)
        assert manager.transaction_for_access(access()) is not None


class TestThreadLifecycle:
    def test_thread_end_closes_transaction(self):
        manager = TransactionManager(make_spec())
        tx = manager.transaction_for_access(access())
        manager.on_thread_end("T1")
        assert tx.finished

    def test_finish_all(self):
        manager = TransactionManager(make_spec())
        a = manager.transaction_for_access(access(thread="T1"))
        b = manager.transaction_for_access(access(thread="T2"))
        manager.finish_all()
        assert a.finished and b.finished

    def test_current_or_latest(self):
        manager = TransactionManager(make_spec())
        assert manager.current_or_latest("T1") is None
        tx = manager.transaction_for_access(access())
        assert manager.current_or_latest("T1") is tx
        manager.on_thread_end("T1")
        assert manager.current_or_latest("T1") is tx  # latest, finished


class TestTransactionStructure:
    def test_successors_include_cross_and_intra(self):
        a = Transaction(1, "T1", "m", False)
        b = Transaction(2, "T1", "m", False)
        c = Transaction(3, "T2", "m", False)
        a.intra_next = b
        edge = IdgEdge(a, c, "conflicting", 1)
        a.out_edges.append(edge)
        c.in_edges.append(edge)
        assert set(a.successors()) == {b, c}

    def test_has_cross_edges(self):
        a = Transaction(1, "T1", "m", False)
        assert not a.has_cross_edges()
        b = Transaction(2, "T2", "m", False)
        edge = IdgEdge(a, b, "x", 1)
        b.in_edges.append(edge)
        assert b.has_cross_edges()
