"""Blame assignment: outgoing edge older than incoming."""

import pytest

from repro.core.blame import blamed_nodes
from repro.core.pdg import PdgEdge


def cycle(*pairs_with_order):
    return [PdgEdge(src, dst, order) for src, dst, order in pairs_with_order]


def test_completing_transaction_blamed():
    # 1 -> 2 created first, then 2 -> 1 closes the cycle:
    # node 1's outgoing (order 1) is older than its incoming (order 2)
    assert blamed_nodes(cycle((1, 2, 1), (2, 1, 2))) == [1]


def test_newest_edge_sink_always_blamed():
    edges = cycle((1, 2, 5), (2, 3, 1), (3, 1, 9))
    # closing edge 3->1 (order 9): node 1 has out=5 < in=9 -> blamed
    assert 1 in blamed_nodes(edges)


def test_multiple_blames_possible():
    # orders: 1->2 @1, 2->3 @4, 3->1 @6:
    # node 1: out 1 < in 6 (blamed); node 2: out 4 > in 1; node 3: out 6 > in 4
    assert blamed_nodes(cycle((1, 2, 1), (2, 3, 4), (3, 1, 6))) == [1]
    # orders: 1->2 @2, 2->3 @1, 3->1 @3:
    # node 1: out 2 < in 3 (blamed); node 2: out 1 < in 2 (blamed)
    assert blamed_nodes(cycle((1, 2, 2), (2, 3, 1), (3, 1, 3))) == [1, 2]


def test_empty_cycle():
    assert blamed_nodes([]) == []


def test_figure3_style_blame():
    """The paper's example: Tx1i's outgoing edge (to Tx2j/Tx3k) exists
    before its incoming edge, so Tx1i completes the cycle and is blamed."""
    tx1, tx3 = 11, 33
    edges = cycle((tx1, tx3, 1), (tx3, tx1, 2))
    assert blamed_nodes(edges) == [tx1]
