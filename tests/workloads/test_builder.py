"""Workload synthesis mechanics."""

import pytest

from repro.runtime.executor import run_program
from repro.runtime.scheduler import RandomScheduler
from repro.workloads.builder import WorkloadSpec, build_program


def small_spec(**overrides):
    defaults = dict(
        name="unit",
        threads=2,
        iterations=6,
        shared_objects=3,
        readonly_objects=2,
        violating_methods=2,
        safe_methods=4,
        unary_ops=1,
        pad=2,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestStructure:
    def test_builds_runnable_program(self):
        program = build_program(small_spec())
        program.validate()
        result = run_program(program, RandomScheduler(seed=1))
        assert result.steps > 0

    def test_method_population(self):
        program = build_program(small_spec())
        names = program.method_names()
        assert "worker" in names and "main" in names
        assert any(n.startswith("unsafe_op") for n in names)
        assert any(n.startswith("locked_op") for n in names)

    def test_fork_join_structure(self):
        program = build_program(small_spec())
        assert [t.name for t in program.threads] == ["main"]

    def test_flat_thread_structure(self):
        program = build_program(small_spec(fork_join=False))
        assert len(program.threads) == 2

    def test_worker_marked_entry(self):
        program = build_program(small_spec())
        assert "worker" in program.entry_methods()

    def test_structure_seed_is_name_stable(self):
        a = small_spec()
        b = small_spec()
        assert a.structure_seed() == b.structure_seed()
        assert small_spec(name="other").structure_seed() != a.structure_seed()


class TestFeatures:
    def test_ring_methods(self):
        program = build_program(small_spec(ring_size=3))
        rings = [n for n in program.method_names() if n.startswith("ring_op")]
        assert len(rings) == 3

    def test_sliced_methods(self):
        program = build_program(small_spec(sliced_methods=2))
        assert sum(
            1 for n in program.method_names() if n.startswith("sliced_op")
        ) == 2

    def test_long_transaction_method(self):
        program = build_program(small_spec(long_transaction_iters=10))
        assert "render_scene" in program.methods

    def test_wait_notify_threads(self):
        program = build_program(small_spec(wait_notify_pairs=1))
        assert "producer" in program.methods
        assert program.lookup("withdraw").interrupting
        run_program(program, RandomScheduler(seed=3))  # terminates

    def test_array_traffic_present(self):
        program = build_program(small_spec(array_ops=2, array_length=8))
        result = run_program(program, RandomScheduler(seed=1))
        grid = program.make_context().grid
        assert sum(grid.elements) > 0

    def test_disjoint_workers_do_not_conflict(self):
        from repro.core.doublechecker import DoubleChecker
        from repro.spec.specification import AtomicitySpecification

        spec_obj = small_spec(disjoint=True, violating_methods=0)
        program = build_program(spec_obj)
        spec = AtomicitySpecification.initial(program)
        result = DoubleChecker(spec).run_single(
            build_program(spec_obj), RandomScheduler(seed=2, switch_prob=0.7)
        )
        assert result.icd_stats.sccs == 0

    def test_deterministic_schedules_across_builds(self):
        """The same spec always produces the same invocation schedules."""
        def trace(spec):
            program = build_program(spec)
            events = []

            from repro.runtime.listeners import ExecutionListener

            class Collect(ExecutionListener):
                def on_method_enter(self, thread, method, depth):
                    events.append((thread, method))

            from repro.runtime.executor import Executor

            Executor(program, RandomScheduler(seed=9), [Collect()]).run()
            return events

        assert trace(small_spec()) == trace(small_spec())
