"""The benchmark catalog: structure, determinism, calibrated profiles."""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification
from repro.workloads import all_names, build, compute_bound_names, get_spec
from repro.workloads.catalog import NOT_COMPUTE_BOUND

PAPER_BENCHMARKS = [
    "eclipse6", "hsqldb6", "lusearch6", "xalan6", "avrora9", "jython9",
    "luindex9", "lusearch9", "pmd9", "sunflow9", "xalan9", "elevator",
    "hedc", "philo", "sor", "tsp", "moldyn", "montecarlo", "raytracer",
]


def test_all_nineteen_benchmarks_present():
    assert all_names() == PAPER_BENCHMARKS


def test_compute_bound_excludes_paper_trio():
    names = compute_bound_names()
    assert set(NOT_COMPUTE_BOUND) == {"elevator", "hedc", "philo"}
    assert len(names) == 16
    assert not set(NOT_COMPUTE_BOUND) & set(names)


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        get_spec("nope")


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_every_benchmark_builds_and_validates(name):
    program = build(name)
    program.validate()
    assert program.methods
    assert program.threads


def test_builds_are_structurally_deterministic():
    a = build("eclipse6")
    b = build("eclipse6")
    assert a.method_names() == b.method_names()
    assert [t.method for t in a.threads] == [t.method for t in b.threads]


@pytest.mark.parametrize("name", ["jython9", "luindex9", "pmd9", "sor", "moldyn"])
def test_disjoint_benchmarks_have_no_violations(name):
    program = build(name)
    spec = AtomicitySpecification.initial(program)
    result = DoubleChecker(spec).run_single(
        build(name), RandomScheduler(seed=17, switch_prob=0.6)
    )
    assert result.blamed_methods == set()


@pytest.mark.parametrize("name", ["eclipse6", "xalan6", "hsqldb6", "xalan9"])
def test_buggy_benchmarks_report_violations(name):
    program = build(name)
    spec = AtomicitySpecification.initial(program)
    result = DoubleChecker(spec).run_single(
        build(name), RandomScheduler(seed=17, switch_prob=0.6)
    )
    assert result.blamed_methods


def test_eclipse6_has_largest_bug_population():
    counts = {n: get_spec(n).violating_methods for n in PAPER_BENCHMARKS}
    assert counts["eclipse6"] == max(counts.values())


def test_oom_hazard_benchmarks_declare_adjustments():
    assert "render_scene" in get_spec("raytracer").spec_adjustments
    assert "render_scene" in get_spec("sunflow9").spec_adjustments


def test_philo_uses_wait_notify():
    assert get_spec("philo").wait_notify_pairs > 0
    program = build("philo")
    assert "withdraw" in program.methods
    assert program.lookup("withdraw").interrupting


def test_tsp_is_unary_dominated():
    spec = get_spec("tsp")
    assert spec.unary_ops >= 10


def test_xalan6_is_the_imprecision_storm():
    spec = get_spec("xalan6")
    assert spec.sliced_methods > 0
    assert spec.sliced_weight >= 0.3


def test_long_transactions_exhaust_pcd_budget():
    """raytracer's long atomic region OOMs PCD unless its method is
    excluded — the paper's Section 5.1 adjustment.  The hazard is
    schedule-dependent (the long transaction must land in an imprecise
    cycle), so several seeds are tried; the adjusted specification must
    be clean on every one of them."""
    from repro.errors import OutOfMemoryBudget
    from repro.harness.runner import make_scheduler

    seeds = range(6)
    oomed = False
    for seed in seeds:
        program = build("raytracer")
        spec = AtomicitySpecification.initial(program)
        assert spec.is_atomic("render_scene")
        checker = DoubleChecker(spec, pcd_memory_budget=2_000)
        try:
            checker.run_single(program, make_scheduler(seed))
        except OutOfMemoryBudget as error:
            assert error.component == "PCD"
            oomed = True
    assert oomed, "the long-transaction hazard never fired"

    for seed in seeds:
        program = build("raytracer")
        adjusted = AtomicitySpecification.initial(program).exclude(
            ["render_scene"]
        )
        DoubleChecker(adjusted, pcd_memory_budget=2_000).run_single(
            program, make_scheduler(seed)
        )  # must not raise
