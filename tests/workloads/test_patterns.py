"""Violation patterns: each buggy idiom is detected, each safe one is not."""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.runtime.ops import Invoke
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification
from repro.workloads import patterns


def _run_pattern(factory, takes_lane=False, threads=3, iterations=12):
    """Build a fresh program per trial (heap state must not leak)."""
    blamed = set()
    for seed in range(4):
        program = Program("pattern")
        target = program.add_global_object("target")
        aux = program.add_global_object("aux")
        body = factory(target, aux)
        program.method(body, name="candidate")

        def worker(ctx, tid):
            for _ in range(iterations):
                yield Invoke("candidate", (tid,) if takes_lane else ())

        program.method(worker, name="worker")
        program.mark_entry("worker")
        for i in range(threads):
            program.add_thread(f"T{i}", "worker", (i,))
        spec = AtomicitySpecification.initial(program)
        result = DoubleChecker(spec).run_single(
            program, RandomScheduler(seed=seed, switch_prob=0.8)
        )
        blamed |= result.blamed_methods
    return blamed


class TestViolatingPatterns:
    def test_split_rmw_detected(self):
        blamed = _run_pattern(lambda t, a: patterns.split_rmw(t))
        assert "candidate" in blamed

    def test_toctou_detected(self):
        blamed = _run_pattern(lambda t, a: patterns.toctou(t, a))
        assert "candidate" in blamed

    def test_two_phase_locked_detected(self):
        """Race-free but not atomic: the essence of atomicity checking
        beyond race detection."""
        blamed = _run_pattern(lambda t, a: patterns.two_phase_locked(t))
        assert "candidate" in blamed

    def test_read_pair_detected(self):
        # read_pair needs a concurrent writer: pair it with a writer body
        blamed = set()
        for seed in range(4):
            program = Program("pattern")
            target = program.add_global_object("target")
            program.method(patterns.read_pair(target), name="candidate")

            def writer(ctx):
                from repro.runtime.ops import Write

                for i in range(12):
                    yield Write(target, "config", i)

            def worker(ctx):
                for _ in range(12):
                    yield Invoke("candidate")

            program.method(writer, name="writer")
            program.method(worker, name="worker")
            program.mark_entry("worker")
            program.mark_entry("writer")
            program.add_thread("R1", "worker")
            program.add_thread("R2", "worker")
            program.add_thread("W", "writer")
            spec = AtomicitySpecification.initial(program)
            result = DoubleChecker(spec).run_single(
                program, RandomScheduler(seed=seed, switch_prob=0.8)
            )
            blamed |= result.blamed_methods
        assert "candidate" in blamed


class TestSafePatterns:
    def test_locked_rmw_clean(self):
        blamed = _run_pattern(lambda t, a: patterns.locked_rmw(t))
        assert blamed == set()

    def test_shared_read_clean(self):
        blamed = _run_pattern(lambda t, a: patterns.shared_read([t, a]))
        assert blamed == set()

    def test_hot_write_clean(self):
        """Blind writes to one field are serializable at transaction
        granularity only if no read observes them — with write-write
        conflicts only, every interleaving is equivalent to some serial
        order of the writes themselves... but W-W edges both ways do
        form cycles; assert the checker's verdict matches Velodrome's."""
        from repro.velodrome.checker import VelodromeChecker

        for seed in range(3):
            program = Program("pattern")
            target = program.add_global_object("target")
            program.method(patterns.hot_write(target), name="candidate")

            def worker(ctx):
                for _ in range(10):
                    yield Invoke("candidate")

            program.method(worker, name="worker")
            program.mark_entry("worker")
            program.add_thread("A", "worker")
            program.add_thread("B", "worker")
            spec = AtomicitySpecification.initial(program)
            dc = DoubleChecker(spec).run_single(
                program, RandomScheduler(seed=seed, switch_prob=0.8)
            )
            program2 = Program("pattern")
            target2 = program2.add_global_object("target")
            program2.method(patterns.hot_write(target2), name="candidate")
            program2.method(worker, name="worker")
            program2.mark_entry("worker")
            program2.add_thread("A", "worker")
            program2.add_thread("B", "worker")
            velodrome = VelodromeChecker(
                AtomicitySpecification.initial(program2)
            ).run(program2, RandomScheduler(seed=seed, switch_prob=0.8))
            assert dc.blamed_methods == velodrome.blamed_methods

    def test_field_sliced_never_precisely_cyclic(self):
        """Per-thread fields: ICD sees SCCs, PCD must filter them all."""
        from repro.core.icd import ICD
        from repro.core.pcd import PCD
        from repro.runtime.executor import Executor

        program = Program("sliced")
        target = program.add_global_object("target")
        program.method(patterns.field_sliced(target), name="candidate")

        def worker(ctx, tid):
            for _ in range(15):
                yield Invoke("candidate", (tid,))

        program.method(worker, name="worker")
        program.mark_entry("worker")
        for i in range(3):
            program.add_thread(f"T{i}", "worker", (i,))
        spec = AtomicitySpecification.initial(program)

        pcd = PCD()
        violations = []
        icd = ICD(spec, on_scc=lambda c: violations.extend(pcd.process(c)))
        Executor(
            program, RandomScheduler(seed=5, switch_prob=0.8), [icd]
        ).run()
        assert icd.stats.sccs > 0          # imprecise cycles exist
        assert violations == []            # none are precise
