"""Text-table rendering."""

from repro.harness.rendering import render_table


def test_basic_table():
    text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "22" in lines[-1]


def test_title_and_rule():
    text = render_table(["h"], [["x"]], title="My Table")
    lines = text.splitlines()
    assert lines[0] == "My Table"
    assert set(lines[1]) == {"="}


def test_alignment():
    text = render_table(["name", "n"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    # numbers right-aligned: the last characters of both data rows align
    assert lines[-1].endswith("22")
    assert lines[-2].endswith(" 1")


def test_float_formatting():
    text = render_table(["name", "x"], [["a", 3.14159]])
    assert "3.14" in text and "3.1416" not in text


def test_none_rendered_as_dash():
    assert "-" in render_table(["a", "b"], [["x", None]]).splitlines()[-1]


def test_multiple_left_columns():
    text = render_table(
        ["a", "b", "n"], [["x", "y", 1]], align_left_columns=2
    )
    assert text.splitlines()[-1].startswith("x")
