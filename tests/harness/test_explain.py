"""Violation explanations."""

from repro.core.reports import ViolationRecord, ViolationSummary
from repro.harness.explain import explain_summary, explain_violation


def record(method="update", size=2):
    methods = tuple([method] + ["other"] * (size - 1))
    return ViolationRecord(
        blamed_method=method,
        blamed_tx_id=1,
        thread_name="T1",
        cycle_methods=methods,
        cycle_tx_ids=tuple(range(1, size + 1)),
        detector="pcd",
    )


def test_explains_two_cycle():
    text = explain_violation(record(size=2))
    assert "update" in text
    assert "split update" in text
    assert "Tx1" in text and "Tx2" in text


def test_explains_longer_cycle():
    text = explain_violation(record(size=4))
    assert "multi-party" in text
    assert "4 transactions" in text


def test_summary_groups_by_method():
    summary = ViolationSummary()
    summary.add(record("a"))
    summary.add(record("a", size=3))
    summary.add(record("b"))
    text = explain_summary(summary)
    assert "2 non-atomic method(s), 3 dynamic cycle(s)" in text
    assert "a: 2 cycle(s)" in text
    assert "b: 1 cycle(s)" in text


def test_empty_summary():
    assert "no atomicity violations" in explain_summary(ViolationSummary())


def test_end_to_end_explanation():
    from repro.core.doublechecker import DoubleChecker
    from repro.runtime.scheduler import RandomScheduler

    import sys, os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))
    from tests.util import counter_program, spec_for

    program = counter_program(threads=2, iterations=10)
    result = DoubleChecker(spec_for(program)).run_single(
        program, RandomScheduler(seed=4, switch_prob=0.7)
    )
    text = explain_summary(result.violations)
    assert "rmw" in text
