"""Figure 7 result aggregation, on synthetic rows (no runs)."""

import math

import pytest

from repro.harness.figure7 import CONFIGS, Figure7Result, Figure7Row


def row(name, velodrome, single, first, second):
    r = Figure7Row(name)
    r.normalized = {
        "velodrome": velodrome,
        "single": single,
        "first": first,
        "second": second,
    }
    r.gc_fraction = {c: 0.1 for c in CONFIGS}
    r.measured = {c: 1.5 for c in CONFIGS}
    return r


def test_geomeans_are_geometric():
    result = Figure7Result([row("a", 4.0, 2.0, 1.0, 1.0),
                            row("b", 9.0, 8.0, 4.0, 4.0)])
    means = result.geomeans()
    assert means["velodrome"] == pytest.approx(6.0)
    assert means["single"] == pytest.approx(4.0)
    assert means["first"] == pytest.approx(2.0)


def test_render_includes_every_benchmark_and_geomean():
    result = Figure7Result([row("alpha", 6, 3, 2, 2), row("beta", 5, 4, 2, 3)])
    text = result.render()
    assert "alpha" in text and "beta" in text
    assert "geomean" in text
    assert "Figure 7" in text


def test_measured_geomeans_handle_rows():
    result = Figure7Result([row("a", 4, 2, 1, 1)])
    measured = result.measured_geomeans()
    assert measured["velodrome"] == pytest.approx(1.5)


def test_configs_constant_stable():
    assert CONFIGS == ("velodrome", "single", "first", "second")
