"""Deterministic fault injection: spec parsing, decisions, firing."""

import pytest

from repro.harness.faults import (
    FAULT_SEED_ENV,
    FAULT_SPEC_ENV,
    FaultInjectionError,
    FaultPlan,
    FaultRule,
    InjectedHang,
    SimulatedCrash,
    TransientCellError,
    parse_fault_spec,
    resolve_fault_plan,
)


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
def test_parse_single_clause():
    plan = parse_fault_spec("crash:0.2")
    assert plan.rules == (FaultRule("crash", 0.2),)
    assert plan.seed == 0


def test_parse_multiple_clauses_with_options():
    plan = parse_fault_spec(
        "crash:0.1, transient:0.3:limit=2, hang:0.05:seconds=1.5", seed=7
    )
    assert plan.seed == 7
    assert plan.rules == (
        FaultRule("crash", 0.1),
        FaultRule("transient", 0.3, limit=2),
        FaultRule("hang", 0.05, seconds=1.5),
    )


def test_parse_empty_spec_means_no_plan():
    assert parse_fault_spec("") is None
    assert parse_fault_spec("  ") is None
    assert parse_fault_spec(" , ") is None


@pytest.mark.parametrize(
    "spec",
    [
        "crash",                 # no probability
        "meteor:0.5",            # unknown kind
        "crash:lots",            # non-numeric probability
        "crash:1.5",             # probability out of range
        "crash:-0.1",            # probability out of range
        "crash:0.2:limit=0",     # limit must be >= 1
        "crash:0.2:limit=x",     # bad option value
        "crash:0.2:color=red",   # unknown option
        "crash:0.2:limit=",      # empty option value
    ],
)
def test_parse_rejects_malformed_specs(spec):
    with pytest.raises(FaultInjectionError):
        parse_fault_spec(spec)


def test_fault_injection_error_is_a_value_error():
    # the CLI maps ValueError from pool construction to exit code 2
    assert issubclass(FaultInjectionError, ValueError)


# ----------------------------------------------------------------------
# decisions
# ----------------------------------------------------------------------
def test_decide_is_deterministic_across_plan_instances():
    a = parse_fault_spec("crash:0.5,transient:0.5", seed=3)
    b = parse_fault_spec("crash:0.5,transient:0.5", seed=3)
    keys = [f"cell-{i}#0" for i in range(200)]
    decisions = [a.decide(k, 0) for k in keys]
    assert decisions == [b.decide(k, 0) for k in keys]
    # a 50% rule over 200 keys fires somewhere strictly between never
    # and always; anything else means the draw is not uniform
    fired = [d for d in decisions if d is not None]
    assert 0 < len(fired) < len(keys)


def test_decide_depends_on_seed():
    keys = [f"cell-{i}#0" for i in range(200)]
    a = [parse_fault_spec("crash:0.5", seed=0).decide(k, 0) for k in keys]
    b = [parse_fault_spec("crash:0.5", seed=1).decide(k, 0) for k in keys]
    assert a != b


def test_probability_bounds():
    always = FaultPlan((FaultRule("transient", 1.0),))
    never = FaultPlan((FaultRule("transient", 0.0),))
    for i in range(50):
        assert always.decide(f"k{i}", 0) is not None
        assert never.decide(f"k{i}", 0) is None


def test_limit_caps_sabotaged_attempts():
    plan = FaultPlan((FaultRule("transient", 1.0, limit=2),))
    assert plan.decide("k", 0) is not None
    assert plan.decide("k", 1) is not None
    assert plan.decide("k", 2) is None  # retries past the limit run clean
    assert plan.decide("k", 99) is None


# ----------------------------------------------------------------------
# firing
# ----------------------------------------------------------------------
def test_fire_inline_crash_raises_not_exits():
    plan = FaultPlan((FaultRule("crash", 1.0),))
    with pytest.raises(SimulatedCrash):
        plan.fire("k", 0, in_worker=False)


def test_fire_inline_hang_raises_without_sleeping():
    plan = FaultPlan((FaultRule("hang", 1.0, seconds=3600.0),))
    with pytest.raises(InjectedHang):
        plan.fire("k", 0, in_worker=False)  # must return promptly


def test_fire_transient_raises_everywhere():
    plan = FaultPlan((FaultRule("transient", 1.0),))
    with pytest.raises(TransientCellError):
        plan.fire("k", 0, in_worker=False)
    with pytest.raises(TransientCellError):
        plan.fire("k", 0, in_worker=True)


def test_fire_clean_cell_is_a_no_op():
    plan = FaultPlan((FaultRule("crash", 0.0),))
    plan.fire("k", 0, in_worker=False)
    plan.fire("k", 0, in_worker=True)


# ----------------------------------------------------------------------
# environment fallback
# ----------------------------------------------------------------------
def test_resolve_prefers_explicit_spec(monkeypatch):
    monkeypatch.setenv(FAULT_SPEC_ENV, "crash:0.9")
    plan = resolve_fault_plan("transient:0.1", seed=2)
    assert plan.rules == (FaultRule("transient", 0.1),)
    assert plan.seed == 2


def test_resolve_falls_back_to_environment(monkeypatch):
    monkeypatch.setenv(FAULT_SPEC_ENV, "crash:0.9")
    monkeypatch.setenv(FAULT_SEED_ENV, "5")
    plan = resolve_fault_plan(None, None)
    assert plan.rules == (FaultRule("crash", 0.9),)
    assert plan.seed == 5


def test_resolve_defaults_to_no_plan(monkeypatch):
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
    assert resolve_fault_plan(None, None) is None


def test_resolve_rejects_garbage_seed_env(monkeypatch):
    monkeypatch.setenv(FAULT_SEED_ENV, "soon")
    with pytest.raises(FaultInjectionError):
        resolve_fault_plan("crash:0.2", None)
