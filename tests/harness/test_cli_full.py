"""The CLI front end across experiments (small benchmark subsets)."""

import pytest

from repro.harness import runner
from repro.harness.cli import EXPERIMENTS, main


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


def test_experiment_registry_is_complete():
    assert set(EXPERIMENTS) == {
        "table2",
        "table3",
        "figure7",
        "unsound",
        "refinement-phases",
        "arrays",
        "pcd-only",
        "second-run-variants",
    }


@pytest.mark.parametrize(
    "experiment",
    ["table3", "figure7", "unsound", "arrays", "second-run-variants"],
)
def test_each_experiment_runs_via_cli(experiment, capsys):
    code = main([experiment, "--names", "hedc"])
    assert code == 0
    out = capsys.readouterr().out
    assert "hedc" in out


def test_out_directory_receives_files(tmp_path, capsys):
    main(["table3", "--names", "hedc", "--out", str(tmp_path / "r")])
    assert (tmp_path / "r" / "table3.txt").exists()


def test_pcd_only_via_cli(capsys):
    code = main(["pcd-only", "--names", "hedc"])
    assert code == 0
    assert "PCD-only" in capsys.readouterr().out


def test_refinement_phases_via_cli(capsys):
    code = main(["refinement-phases", "--names", "hedc"])
    assert code == 0
    assert "refinement" in capsys.readouterr().out.lower()
