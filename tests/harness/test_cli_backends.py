"""The ``check``/``crosscheck`` experiments and ``--backend`` plumbing
through the CLI: happy paths, output files, and the exit-2 preflights
for unsupported combinations."""

import pytest

from repro.harness import runner
from repro.harness.cli import main


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


class TestCheck:
    def test_default_backend_is_icd(self, capsys):
        assert main(["check", "--names", "hedc"]) == 0
        out = capsys.readouterr().out
        assert "icd backend" in out
        assert "hedc" in out

    @pytest.mark.parametrize("backend", ["icd", "velodrome", "vc"])
    def test_each_backend_runs(self, backend, capsys):
        code = main(["check", "--backend", backend, "--names", "lusearch6"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"{backend} backend" in out
        # lusearch6's violation is blamed identically by every backend
        assert "unsafe_op0" in out

    def test_out_directory_receives_file(self, tmp_path, capsys):
        code = main(
            [
                "check",
                "--backend",
                "vc",
                "--names",
                "hedc",
                "--out",
                str(tmp_path / "r"),
            ]
        )
        assert code == 0
        assert (tmp_path / "r" / "check.txt").exists()

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--backend", "nope", "--names", "hedc"])
        assert excinfo.value.code == 2


class TestCrosscheck:
    def test_agreement_on_catalog_subset(self, capsys):
        code = main(["crosscheck", "--names", "hedc", "lusearch6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all backends agree" in out
        assert "vc+sync" in out
        assert "offline" in out


class TestPreflights:
    def test_backend_outside_check_exits_2(self, capsys):
        code = main(["table3", "--backend", "vc", "--names", "hedc"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--backend only applies to the check experiment" in err

    def test_backend_with_crosscheck_exits_2(self, capsys):
        code = main(["crosscheck", "--backend", "vc", "--names", "hedc"])
        assert code == 2

    @pytest.mark.parametrize("backend", ["velodrome", "vc"])
    def test_unsharded_backends_reject_shards(self, backend, capsys):
        code = main(
            [
                "check",
                "--backend",
                backend,
                "--names",
                "hedc",
                "--shards",
                "2",
            ]
        )
        assert code == 2
        assert "sharding only supports the icd" in capsys.readouterr().err

    def test_crosscheck_rejects_shards(self, capsys):
        code = main(["crosscheck", "--names", "hedc", "--shards", "2"])
        assert code == 2
        assert "sharding only supports the icd" in capsys.readouterr().err

    def test_sharded_icd_check_still_allowed(self, capsys):
        code = main(
            ["check", "--backend", "icd", "--names", "hedc", "--shards", "2"]
        )
        assert code == 0
        assert "hedc" in capsys.readouterr().out
