"""CLI robustness: fault-tolerance flags, pre-flight validation, and
readable exit-2 failures (never a traceback for predictable mistakes)."""

import pytest

from repro.harness import runner
from repro.harness.cli import main
from repro.harness.parallel import RETRIES_ENV


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


# ----------------------------------------------------------------------
# the fault-tolerance flags, end to end
# ----------------------------------------------------------------------
def test_retries_and_fault_spec_flags(capsys):
    code = main([
        "table3", "--names", "hedc",
        "--retries", "2", "--fault-spec", "transient:0.3",
    ])
    assert code == 0
    assert "hedc" in capsys.readouterr().out


def test_checkpoint_flag_resumes(tmp_path, capsys):
    ck = str(tmp_path / "ck.jsonl")
    assert main(["table3", "--names", "hedc", "--checkpoint", ck]) == 0
    first = capsys.readouterr().out
    assert main(["table3", "--names", "hedc", "--checkpoint", ck]) == 0
    assert capsys.readouterr().out == first


def test_cell_timeout_flag(capsys):
    code = main(["table3", "--names", "hedc", "--cell-timeout", "300"])
    assert code == 0


# ----------------------------------------------------------------------
# readable exit-2 failures
# ----------------------------------------------------------------------
def test_bad_fault_spec_exits_2(capsys):
    code = main(["table3", "--names", "hedc", "--fault-spec", "meteor:0.5"])
    assert code == 2
    err = capsys.readouterr().err
    assert "error" in err and "meteor" in err
    assert "Traceback" not in err


def test_bad_retries_env_exits_2(monkeypatch, capsys):
    monkeypatch.setenv(RETRIES_ENV, "several")
    code = main(["table3", "--names", "hedc"])
    assert code == 2
    assert RETRIES_ENV in capsys.readouterr().err


def test_out_under_a_file_exits_2(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory\n")
    code = main([
        "table3", "--names", "hedc", "--out", str(blocker / "results"),
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "--out" in err and "Traceback" not in err


def test_out_path_is_a_file_exits_2(tmp_path, capsys):
    blocker = tmp_path / "results"
    blocker.write_text("already a file\n")
    code = main(["table3", "--names", "hedc", "--out", str(blocker)])
    assert code == 2
    assert "--out" in capsys.readouterr().err


def test_out_accepts_not_yet_existing_directory(tmp_path, capsys):
    target = tmp_path / "a" / "b" / "results"
    code = main(["table3", "--names", "hedc", "--out", str(target)])
    assert code == 0
    assert (target / "table3.txt").exists()


def test_checkpoint_in_missing_directory_exits_2(tmp_path, capsys):
    code = main([
        "table3", "--names", "hedc",
        "--checkpoint", str(tmp_path / "nowhere" / "ck.jsonl"),
    ])
    assert code == 2
    assert "--checkpoint" in capsys.readouterr().err
