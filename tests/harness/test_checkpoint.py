"""Checkpoint store: stable cell keys, atomic flushes, lenient loads."""

import json
import os
from dataclasses import dataclass

from repro.harness.checkpoint import FORMAT, MISSING, Checkpoint, cell_key


def _cell_fn(name, seed):
    return (name, seed)


@dataclass
class _Spec:
    name: str
    methods: tuple


# ----------------------------------------------------------------------
# cell identity
# ----------------------------------------------------------------------
def test_cell_key_is_stable_and_argument_sensitive():
    assert cell_key(_cell_fn, ("hsqldb6", 1)) == cell_key(_cell_fn, ("hsqldb6", 1))
    assert cell_key(_cell_fn, ("hsqldb6", 1)) != cell_key(_cell_fn, ("hsqldb6", 2))
    assert cell_key(_cell_fn, ("hsqldb6", 1)) != cell_key(_Spec, ("hsqldb6", 1))


def test_cell_key_canonicalizes_unordered_collections():
    # set/dict iteration order varies across processes; the key must not
    assert cell_key(_cell_fn, ({"b", "a", "c"},)) == cell_key(
        _cell_fn, ({"c", "a", "b"},)
    )
    assert cell_key(_cell_fn, ({"x": 1, "y": 2},)) == cell_key(
        _cell_fn, ({"y": 2, "x": 1},)
    )


def test_cell_key_renders_dataclasses_field_wise():
    a = _Spec("hsqldb6", ("m1", "m2"))
    b = _Spec("hsqldb6", ("m1", "m2"))
    assert a is not b
    assert cell_key(_cell_fn, (a,)) == cell_key(_cell_fn, (b,))
    assert cell_key(_cell_fn, (a,)) != cell_key(
        _cell_fn, (_Spec("hsqldb6", ("m1",)),)
    )


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def test_roundtrip_and_reload(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    store = Checkpoint(path)
    assert len(store) == 0
    assert store.get("k1") is MISSING

    store.add("k1", {"rows": [1, 2]}, None)
    store.add("k2", "result-2", {"counter": 3})

    resumed = Checkpoint(path)
    assert len(resumed) == 2
    assert resumed.get("k1") == ({"rows": [1, 2]}, None)
    assert resumed.get("k2") == ("result-2", {"counter": 3})
    assert "k1" in resumed and "missing" not in resumed


def test_flush_leaves_no_temp_droppings(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    store = Checkpoint(path)
    for i in range(5):
        store.add(f"k{i}", i, None)
    assert sorted(os.listdir(tmp_path)) == ["ck.jsonl"]


def test_file_is_jsonl_with_format_header(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    Checkpoint(path).add("k1", 42, None)
    lines = open(path).read().splitlines()
    assert json.loads(lines[0]) == {"format": FORMAT}
    assert json.loads(lines[1])["key"] == "k1"


def test_duplicate_add_is_a_no_op(tmp_path):
    store = Checkpoint(str(tmp_path / "ck.jsonl"))
    store.add("k1", "first", None)
    store.add("k1", "second", None)
    assert store.get("k1") == ("first", None)
    assert len(Checkpoint(store.path)) == 1


def test_load_skips_malformed_lines(tmp_path):
    path = tmp_path / "ck.jsonl"
    store = Checkpoint(str(path))
    store.add("good", "kept", None)
    with open(path, "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"key": "no-data-field"}\n')
        handle.write('{"key": "bad-pickle", "data": "AAAA"}\n')
        handle.write('{"key": "trunc', )  # a write cut off mid-record
    resumed = Checkpoint(str(path))
    assert len(resumed) == 1
    assert resumed.get("good") == ("kept", None)


def test_missing_file_loads_empty(tmp_path):
    store = Checkpoint(str(tmp_path / "never-written.jsonl"))
    assert len(store) == 0
    # and nothing was created on disk by merely opening the store
    assert not os.path.exists(store.path)
