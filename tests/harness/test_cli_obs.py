"""CLI observability flags: --obs, --trace-out, --metrics-out,
--version, and readable errors for unwritable output paths."""

import json

import pytest

import repro
from repro.harness import runner
from repro.harness.cli import main
from repro.obs.registry import NOOP, recorder, use_registry


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path / "cache"))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


@pytest.fixture(autouse=True)
def restore_recorder():
    previous = recorder()
    yield
    use_registry(previous)


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_obs_off_is_default_and_prints_no_summary(capsys):
    assert main(["table3", "--names", "hedc"]) == 0
    assert "Telemetry" not in capsys.readouterr().out


def test_obs_counters_prints_summary(capsys):
    assert main(["table3", "--names", "hedc", "--obs", "counters"]) == 0
    out = capsys.readouterr().out
    assert "Telemetry: counters" in out
    assert "phase.experiment.table3.seconds" in out


def test_metrics_out_writes_merged_snapshot(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    code = main(
        ["table3", "--names", "hedc", "--metrics-out", str(metrics_path)]
    )
    assert code == 0
    doc = json.loads(metrics_path.read_text())
    # --metrics-out alone elevates off -> counters
    assert doc["mode"] == "counters"
    assert doc["counters"]["executor.runs"] > 0


def test_trace_out_implies_full_mode(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code = main(["table3", "--names", "hedc", "--trace-out", str(trace_path)])
    assert code == 0
    doc = json.loads(trace_path.read_text())
    phases = {event["ph"] for event in doc["traceEvents"]}
    # sharded runs add flow arrows ("s"/"f") between process tracks
    assert {"M", "X"} <= phases <= {"M", "X", "s", "f"}
    names = {event["name"] for event in doc["traceEvents"]}
    assert "experiment.table3" in names


def test_unwritable_metrics_out_fails_readably(capsys):
    code = main(
        ["table3", "--names", "hedc", "--metrics-out", "/nonexistent/m.json"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "directory does not exist" in err
    assert "Traceback" not in err


def test_metrics_out_to_directory_fails_readably(tmp_path, capsys):
    code = main(
        ["table3", "--names", "hedc", "--metrics-out", str(tmp_path)]
    )
    assert code == 2
    assert "path is a directory" in capsys.readouterr().err


def test_unwritable_trace_out_fails_before_running(tmp_path, capsys):
    """The writability check runs up front: nothing is executed and no
    partial output is printed before the error."""
    code = main(
        ["table3", "--names", "hedc", "--trace-out", "/nonexistent/t.json"]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert "hedc" not in captured.out


def test_cli_restores_previous_recorder(tmp_path):
    assert recorder() is NOOP
    main(["table3", "--names", "hedc", "--obs", "counters"])
    assert recorder() is NOOP


# ----------------------------------------------------------------------
# conflicting --obs / output-flag combinations fail the pre-flight
# ----------------------------------------------------------------------
def test_explicit_obs_off_with_trace_out_exits_2(tmp_path, capsys):
    code = main(
        ["table3", "--names", "hedc", "--obs", "off",
         "--trace-out", str(tmp_path / "t.json")]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert "--trace-out" in captured.err
    assert "--obs off" in captured.err
    # nothing ran and no output file was created
    assert "hedc" not in captured.out
    assert not (tmp_path / "t.json").exists()


def test_explicit_obs_off_with_metrics_out_exits_2(tmp_path, capsys):
    code = main(
        ["table3", "--names", "hedc", "--obs", "off",
         "--metrics-out", str(tmp_path / "m.json")]
    )
    assert code == 2
    assert "--metrics-out" in capsys.readouterr().err
    assert not (tmp_path / "m.json").exists()


def test_obs_counters_with_trace_out_exits_2(tmp_path, capsys):
    code = main(
        ["table3", "--names", "hedc", "--obs", "counters",
         "--trace-out", str(tmp_path / "t.json")]
    )
    assert code == 2
    assert "--obs full" in capsys.readouterr().err
    assert not (tmp_path / "t.json").exists()


def test_obs_full_with_both_outputs_allowed(tmp_path):
    code = main(
        ["table3", "--names", "hedc", "--obs", "full",
         "--metrics-out", str(tmp_path / "m.json"),
         "--trace-out", str(tmp_path / "t.json")]
    )
    assert code == 0
    assert json.loads((tmp_path / "m.json").read_text())["mode"] == "full"
    assert (tmp_path / "t.json").exists()
