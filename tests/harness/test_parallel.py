"""CellPool: job resolution, ordered results, and serial/parallel
determinism of the experiment surfaces.

The determinism tests are the contract the parallel harness advertises:
for a representative workload subset, ``jobs=4`` must reproduce the
serial path exactly — Table 2's blamed-method sets, Table 3's
counters, Figure 7's normalized times.
"""

import os
import time

import pytest

from repro.harness import figure7, runner, table2, table3
from repro.harness.parallel import (
    CELL_TIMEOUT_ENV,
    CHECKPOINT_ENV,
    CellPool,
    JOBS_ENV,
    RETRIES_ENV,
    ensure_pool,
    resolve_cell_timeout,
    resolve_checkpoint,
    resolve_jobs,
    resolve_retries,
)
from repro.obs.registry import MODE_COUNTERS, MetricsRegistry, use_registry

NAMES = ["hsqldb6", "xalan6"]


# ----------------------------------------------------------------------
# unit behaviour
# ----------------------------------------------------------------------
def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "7")
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) == 7


def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_zero_means_cpu_count(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "many")
    with pytest.raises(ValueError):
        resolve_jobs(None)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


def test_starmap_results_are_ordered():
    with CellPool(4) as pool:
        assert pool.starmap(_square, [(i,) for i in range(20)]) == [
            i * i for i in range(20)
        ]


def test_serial_pool_runs_inline():
    pool = CellPool(1)
    assert pool._executor is None
    assert pool.map(_square, [3]) == [9]
    future = pool.submit(_square, 4)
    assert future.result() == 16


def test_serial_pool_submit_captures_exceptions():
    future = CellPool(1).submit(_boom, 1)
    with pytest.raises(RuntimeError):
        future.result()


def test_parallel_pool_propagates_exceptions():
    with CellPool(2) as pool:
        with pytest.raises(RuntimeError):
            pool.starmap(_boom, [(1,)])


def test_ensure_pool_reuses_and_owns():
    with CellPool(1) as outer:
        with ensure_pool(outer) as inner:
            assert inner is outer
    with ensure_pool(None, 1) as owned:
        assert owned.jobs == 1


def test_resolve_retries_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(RETRIES_ENV, "5")
    assert resolve_retries(2) == 2
    assert resolve_retries(None) == 5
    monkeypatch.delenv(RETRIES_ENV)
    assert resolve_retries(None) == 0


@pytest.mark.parametrize("value", ["-1", "soon"])
def test_resolve_retries_rejects_garbage(monkeypatch, value):
    monkeypatch.setenv(RETRIES_ENV, value)
    with pytest.raises(ValueError):
        resolve_retries(None)


def test_resolve_cell_timeout(monkeypatch):
    monkeypatch.setenv(CELL_TIMEOUT_ENV, "2.5")
    assert resolve_cell_timeout(9.0) == 9.0
    assert resolve_cell_timeout(None) == 2.5
    monkeypatch.delenv(CELL_TIMEOUT_ENV)
    assert resolve_cell_timeout(None) is None
    with pytest.raises(ValueError):
        resolve_cell_timeout(0.0)
    monkeypatch.setenv(CELL_TIMEOUT_ENV, "later")
    with pytest.raises(ValueError):
        resolve_cell_timeout(None)


def test_resolve_checkpoint(monkeypatch):
    monkeypatch.setenv(CHECKPOINT_ENV, "/tmp/env.jsonl")
    assert resolve_checkpoint("explicit.jsonl") == "explicit.jsonl"
    assert resolve_checkpoint(None) == "/tmp/env.jsonl"
    monkeypatch.delenv(CHECKPOINT_ENV)
    assert resolve_checkpoint(None) is None


def _interrupt(x):
    raise KeyboardInterrupt


def _exit(x):
    raise SystemExit(3)


def test_serial_pool_submit_reraises_keyboard_interrupt():
    # a Ctrl-C during an inline cell must reach the user immediately,
    # not sit parked in a Future until (if ever) .result() is called
    pool = CellPool(1)
    with pytest.raises(KeyboardInterrupt):
        pool.submit(_interrupt, 1)
    with pytest.raises(SystemExit):
        pool.submit(_exit, 1)


def _marker_or_boom(directory, index, delay):
    if index == 0:
        raise RuntimeError("boom")
    time.sleep(delay)
    with open(os.path.join(directory, f"cell-{index}"), "w") as handle:
        handle.write("done")
    return index


def test_failed_starmap_cancels_and_drains_siblings(tmp_path):
    # satellite fix: when one cell fails non-retryably, pending sibling
    # futures are cancelled and running ones drained before the raise —
    # no cell may still be executing (and writing) after starmap returns
    with CellPool(2) as pool:
        with pytest.raises(RuntimeError):
            pool.starmap(
                _marker_or_boom,
                [(str(tmp_path), i, 0.3) for i in range(8)],
            )
        settled = len(os.listdir(tmp_path))
        time.sleep(0.8)
        assert len(os.listdir(tmp_path)) == settled


def _obs_counting_cell(x):
    from repro.obs.registry import recorder

    recorder().inc("test.cell_runs")
    if x < 0:
        raise RuntimeError("boom")
    return x


def test_failed_batch_merges_no_telemetry():
    # satellite fix: the telemetry merge is all-or-nothing — cells that
    # completed before a sibling failed must not leak their snapshots
    # into the caller's registry
    registry = MetricsRegistry(MODE_COUNTERS)
    previous = use_registry(registry)
    try:
        with CellPool(2) as pool:
            assert pool.starmap(_obs_counting_cell, [(i,) for i in range(4)]) \
                == [0, 1, 2, 3]
            merged = registry.snapshot()["counters"]["test.cell_runs"]
            assert merged == 4
            with pytest.raises(RuntimeError):
                pool.starmap(_obs_counting_cell, [(0,), (-1,), (2,)])
            assert registry.snapshot()["counters"]["test.cell_runs"] == merged
    finally:
        use_registry(previous)


# ----------------------------------------------------------------------
# cache hygiene
# ----------------------------------------------------------------------
def test_store_cache_is_atomic_and_readonly_mode_skips(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._store_cache({"bench": ["m1", "m2"]})
    assert runner._load_cache() == {"bench": ["m1", "m2"]}
    # no temp droppings left behind
    assert sorted(os.listdir(tmp_path)) == ["final_specs.json"]

    runner.set_cache_readonly(True)
    try:
        runner._store_cache({"bench": ["overwritten"]})
        assert runner._load_cache() == {"bench": ["m1", "m2"]}
    finally:
        runner.set_cache_readonly(False)


# ----------------------------------------------------------------------
# serial/parallel determinism of the paper artefacts
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def jobs4():
    with CellPool(4) as pool:
        yield pool


def test_table2_blamed_sets_identical(jobs4):
    serial = table2.generate(NAMES)
    parallel = table2.generate(NAMES, pool=jobs4)
    assert [r.velodrome_blamed for r in serial.rows] == [
        r.velodrome_blamed for r in parallel.rows
    ]
    assert [r.single_blamed for r in serial.rows] == [
        r.single_blamed for r in parallel.rows
    ]
    assert [r.multi_blamed for r in serial.rows] == [
        r.multi_blamed for r in parallel.rows
    ]
    assert serial.render() == parallel.render()


def test_table3_counters_identical(jobs4):
    serial = table3.generate(NAMES, trials=2, first_trials=1)
    parallel = table3.generate(NAMES, trials=2, first_trials=1, pool=jobs4)
    assert serial.rows == parallel.rows
    assert serial.render() == parallel.render()


def test_figure7_normalized_times_identical(jobs4):
    serial = figure7.generate(NAMES, trials=2, first_trials=1)
    parallel = figure7.generate(NAMES, trials=2, first_trials=1, pool=jobs4)
    # modelled numbers are deterministic; measured wall-clock is not
    assert [r.normalized for r in serial.rows] == [
        r.normalized for r in parallel.rows
    ]
    assert [r.gc_fraction for r in serial.rows] == [
        r.gc_fraction for r in parallel.rows
    ]
    assert serial.geomeans() == parallel.geomeans()
