"""CellPool: job resolution, ordered results, and serial/parallel
determinism of the experiment surfaces.

The determinism tests are the contract the parallel harness advertises:
for a representative workload subset, ``jobs=4`` must reproduce the
serial path exactly — Table 2's blamed-method sets, Table 3's
counters, Figure 7's normalized times.
"""

import os

import pytest

from repro.harness import figure7, runner, table2, table3
from repro.harness.parallel import CellPool, JOBS_ENV, ensure_pool, resolve_jobs

NAMES = ["hsqldb6", "xalan6"]


# ----------------------------------------------------------------------
# unit behaviour
# ----------------------------------------------------------------------
def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "7")
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) == 7


def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_zero_means_cpu_count(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "many")
    with pytest.raises(ValueError):
        resolve_jobs(None)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


def test_starmap_results_are_ordered():
    with CellPool(4) as pool:
        assert pool.starmap(_square, [(i,) for i in range(20)]) == [
            i * i for i in range(20)
        ]


def test_serial_pool_runs_inline():
    pool = CellPool(1)
    assert pool._executor is None
    assert pool.map(_square, [3]) == [9]
    future = pool.submit(_square, 4)
    assert future.result() == 16


def test_serial_pool_submit_captures_exceptions():
    future = CellPool(1).submit(_boom, 1)
    with pytest.raises(RuntimeError):
        future.result()


def test_parallel_pool_propagates_exceptions():
    with CellPool(2) as pool:
        with pytest.raises(RuntimeError):
            pool.starmap(_boom, [(1,)])


def test_ensure_pool_reuses_and_owns():
    with CellPool(1) as outer:
        with ensure_pool(outer) as inner:
            assert inner is outer
    with ensure_pool(None, 1) as owned:
        assert owned.jobs == 1


# ----------------------------------------------------------------------
# cache hygiene
# ----------------------------------------------------------------------
def test_store_cache_is_atomic_and_readonly_mode_skips(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._store_cache({"bench": ["m1", "m2"]})
    assert runner._load_cache() == {"bench": ["m1", "m2"]}
    # no temp droppings left behind
    assert sorted(os.listdir(tmp_path)) == ["final_specs.json"]

    runner.set_cache_readonly(True)
    try:
        runner._store_cache({"bench": ["overwritten"]})
        assert runner._load_cache() == {"bench": ["m1", "m2"]}
    finally:
        runner.set_cache_readonly(False)


# ----------------------------------------------------------------------
# serial/parallel determinism of the paper artefacts
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def jobs4():
    with CellPool(4) as pool:
        yield pool


def test_table2_blamed_sets_identical(jobs4):
    serial = table2.generate(NAMES)
    parallel = table2.generate(NAMES, pool=jobs4)
    assert [r.velodrome_blamed for r in serial.rows] == [
        r.velodrome_blamed for r in parallel.rows
    ]
    assert [r.single_blamed for r in serial.rows] == [
        r.single_blamed for r in parallel.rows
    ]
    assert [r.multi_blamed for r in serial.rows] == [
        r.multi_blamed for r in parallel.rows
    ]
    assert serial.render() == parallel.render()


def test_table3_counters_identical(jobs4):
    serial = table3.generate(NAMES, trials=2, first_trials=1)
    parallel = table3.generate(NAMES, trials=2, first_trials=1, pool=jobs4)
    assert serial.rows == parallel.rows
    assert serial.render() == parallel.render()


def test_figure7_normalized_times_identical(jobs4):
    serial = figure7.generate(NAMES, trials=2, first_trials=1)
    parallel = figure7.generate(NAMES, trials=2, first_trials=1, pool=jobs4)
    # modelled numbers are deterministic; measured wall-clock is not
    assert [r.normalized for r in serial.rows] == [
        r.normalized for r in parallel.rows
    ]
    assert [r.gc_fraction for r in serial.rows] == [
        r.gc_fraction for r in parallel.rows
    ]
    assert serial.geomeans() == parallel.geomeans()
