"""Harness plumbing: specs, cells, refinement, caching."""

import pytest

from repro.harness import runner
from repro.spec.specification import AtomicitySpecification


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


def test_initial_spec_applies_oom_adjustments():
    spec = runner.initial_spec("raytracer")
    assert not spec.is_atomic("render_scene")


def test_initial_spec_excludes_worker_entry():
    spec = runner.initial_spec("hsqldb6")
    assert not spec.is_atomic("worker")
    assert spec.is_atomic("unsafe_op0")


def test_baseline_run():
    result = runner.baseline_steps("hedc", seed=0)
    assert result.steps > 0


def test_cells_run():
    spec = runner.initial_spec("hedc")
    assert runner.run_velodrome("hedc", spec, 0).execution.steps > 0
    assert runner.run_single("hedc", spec, 0).execution.steps > 0
    first = runner.run_first("hedc", spec, 0)
    second = runner.run_second("hedc", spec, first.static_info, 0)
    assert second.execution.steps > 0


def test_refinement_removes_bugs():
    result = runner.refine("hedc", "single", trials_per_step=3)
    assert result.converged
    # hedc has one injected violating method
    assert any(m.startswith("unsafe_op") for m in result.all_blamed)


def test_final_spec_has_no_remaining_violations():
    spec = runner.final_spec("hedc")
    for method in spec.atomic_methods():
        assert not method.startswith("unsafe_op")


def test_final_spec_cached_on_disk():
    first = runner.final_spec("hedc")
    runner._FINAL_SPEC_MEMO.clear()
    second = runner.final_spec("hedc")  # loaded from the JSON cache
    assert first.excluded == second.excluded


def test_clear_caches():
    runner.final_spec("hedc")
    runner.clear_caches()
    assert runner._FINAL_SPEC_MEMO == {}
