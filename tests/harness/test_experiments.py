"""The experiment generators, on small benchmark subsets."""

import pytest

from repro.harness import figure7, runner, section54, table2, table3

SMALL = ["hedc", "elevator"]


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


class TestTable2:
    def test_generates_rows_and_totals(self):
        result = table2.generate(SMALL, trials_per_step=2)
        assert [r.name for r in result.rows] == SMALL
        totals = result.totals()
        assert totals["single_total"] >= 1  # hedc/elevator have bugs
        assert 0.0 <= result.multi_detection_rate() <= 1.0

    def test_render(self):
        text = table2.generate(["hedc"], trials_per_step=2).render()
        assert "Table 2" in text
        assert "hedc" in text
        assert "Total" in text


class TestTable3:
    def test_characteristics_columns(self):
        result = table3.generate(SMALL, trials=1, first_trials=1)
        row = result.rows[0]
        assert row.single.regular_transactions > 0
        # the second run instruments at most what single-run does
        assert (
            row.second.regular_transactions
            <= row.single.regular_transactions
        )
        assert "Table 3" in result.render()


class TestFigure7:
    def test_rows_and_geomeans(self):
        result = figure7.generate(SMALL, trials=1, first_trials=1)
        means = result.geomeans()
        # the paper's ordering: first < second <= single < velodrome
        assert means["first"] < means["single"]
        assert means["first"] <= means["second"] <= means["single"] * 1.5
        assert means["single"] < means["velodrome"]
        assert "Figure 7" in result.render()

    def test_all_configs_have_bars(self):
        result = figure7.generate(["hedc"], trials=1, first_trials=1)
        row = result.rows[0]
        for config in figure7.CONFIGS:
            assert row.normalized[config] >= 1.0


class TestSection54:
    def test_unsound_velodrome_cheaper(self):
        result = section54.unsound_velodrome(SMALL, trials=1)
        sound, unsound = result.geomeans()
        assert unsound < sound
        assert "unsound" in result.render().lower()

    def test_refinement_phases_monotone_spec(self):
        result = section54.refinement_phases(["hedc"], trials=1)
        start, half, final = result.geomeans()
        assert all(v >= 1.0 for v in (start, half, final))
        assert "refinement" in result.render().lower()

    def test_arrays_add_overhead(self):
        result = section54.arrays(["hedc"], trials=1)
        dc, dc_arrays, vel, vel_arrays = result.geomeans()
        assert dc_arrays >= dc
        assert vel_arrays >= vel
        assert "xalan6" not in result.rows

    def test_pcd_only_slower(self):
        result = section54.pcd_only(["hedc"], pcd_memory_budget=10_000_000)
        single, pcd = result.geomeans()
        assert pcd > single
        assert "PCD-only" in result.render()

    def test_pcd_only_oom_reported(self):
        result = section54.pcd_only(["elevator"], pcd_memory_budget=10)
        assert result.oom == ["elevator"]
        assert "OOM" in result.render()

    def test_second_run_variants_ordering(self):
        result = section54.second_run_variants(
            ["hedc"], trials=1, first_trials=1
        )
        second, always, velodrome_second = result.rows["hedc"]
        assert always >= second  # conditional instrumentation helps
        assert "second" in result.render().lower()


class TestCli:
    def test_cli_table2(self, capsys, tmp_path):
        from repro.harness.cli import main

        code = main(["table2", "--names", "hedc", "--out", str(tmp_path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 2" in captured.out
        assert (tmp_path / "table2.txt").exists()

    def test_cli_rejects_unknown_experiment(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["nonsense"])
