"""Unit tests for the partitioned analysis plane's merge machinery.

The end-to-end byte-identity of ``--analysis-shards`` runs lives in
``tests/integration/test_sharded_determinism.py``; these tests pin the
three mechanisms that identity rests on, in isolation:

* :class:`ExchangeMerger` — global seq order out of per-stream
  watermarked chunks, including the asymmetric bounds (stream 0 can
  still produce lifecycle records *at* its watermark; other streams
  can still produce accesses at ``watermark + 1``);
* :class:`ExchangeChannel.advance` — drain barriers coalesce in place
  when nothing was emitted between them, and never coalesce across an
  emission or a flush;
* the ``ingest_edges`` seams on :class:`ICD` and
  :class:`IncrementalSccDigraph` — an externally merged edge stream
  takes the exact serial edge path (marks, eager detection, outcome
  tally).
"""

from array import array

from repro.shard.exchange import ExchangeChannel, ExchangeMerger
from repro.shard.wire import (
    T_END,
    T_ENTER,
    T_EVENT,
    T_TSTART,
    W_ADVANCE,
    W_TXSTART,
)


def _payload(*ints):
    return array("q", ints).tobytes()


def _accesses(merger, aidx, triples, watermark):
    """Push ``(desc, seq, tid)`` access records as one chunk."""
    flat = []
    for desc, seq, tid in triples:
        flat += [desc, seq, tid]
    merger.push(aidx, _payload(*flat), watermark)


class _Sink:
    def __init__(self):
        self.msgs = []

    def put(self, msg):
        self.msgs.append(msg)


# ----------------------------------------------------------------------
# ExchangeMerger
# ----------------------------------------------------------------------
def test_merger_interleaves_streams_in_global_seq_order():
    m = ExchangeMerger(2)
    _accesses(m, 0, [(10, 1, 0), (11, 4, 0)], watermark=5)
    _accesses(m, 1, [(20, 2, 1), (21, 3, 1)], watermark=5)
    assert [r[1] for r in m.drain()] == [1, 2, 3, 4]


def test_merger_blocks_on_lagging_stream_until_watermark():
    m = ExchangeMerger(2)
    _accesses(m, 0, [(10, 1, 0), (11, 7, 0)], watermark=7)
    # stream 1 is empty with bound (0 + 1, 0) <= (1, 0): seq 1 must wait
    assert m.drain() == []
    # an empty flush raising stream 1's watermark past 7 releases both
    m.push(1, _payload(), watermark=7)
    assert [r[1] for r in m.drain()] == [1, 7]


def test_merger_stream0_watermark_admits_equal_seq_from_others():
    m = ExchangeMerger(2)
    # stream 0 flushed through seq 5 -> bound (5, 1); stream 1 may
    # dispatch an access AT seq 5 (key (5, 0) < (5, 1)) but nothing
    # later, because stream 0 could still send a lifecycle stamped 5
    _accesses(m, 1, [(20, 5, 1), (21, 6, 1)], watermark=9)
    m.push(0, _payload(), watermark=5)
    assert [r[1] for r in m.drain()] == [5]
    m.push(0, _payload(), watermark=6)
    assert [r[1] for r in m.drain()] == [6]


def test_merger_other_stream_watermark_excludes_equal_seq():
    m = ExchangeMerger(2)
    # stream 1 flushed at watermark 5 -> bound (6, 0): it can still
    # produce an access with seq 6, so stream 0's seq-6 record waits
    _accesses(m, 0, [(10, 6, 0)], watermark=6)
    m.push(1, _payload(), watermark=5)
    assert m.drain() == []
    m.push(1, _payload(), watermark=6)
    assert [r[1] for r in m.drain()] == [6]


def test_merger_lifecycle_sorts_after_same_seq_access():
    m = ExchangeMerger(2)
    # lifecycle records ride stream 0 keyed (stamp, 1): a method enter
    # stamped 3 lands after the seq-3 access and before seq 4
    m.push(
        0,
        _payload(T_ENTER, 0, 2, 1, 3, 10, 4, 0),
        watermark=4,
    )
    _accesses(m, 1, [(20, 3, 1)], watermark=9)
    recs = m.drain()
    assert [r[0] for r in recs] == [20, T_ENTER, 10]
    assert recs[1] == (T_ENTER, 0, 2, 1, 3)


def test_merger_decodes_every_lifecycle_shape():
    m = ExchangeMerger(1)
    m.push(
        0,
        _payload(
            T_TSTART, 0, 1,
            T_EVENT, 5, 2, 0,
            T_END, 9,
        ),
        watermark=9,
    )
    assert m.drain() == [
        (T_TSTART, 0, 1),
        (T_EVENT, 5, 2, 0),
        (T_END, 9),
    ]


# ----------------------------------------------------------------------
# ExchangeChannel.advance
# ----------------------------------------------------------------------
def test_advance_coalesces_consecutive_barriers_in_place():
    ch = ExchangeChannel([_Sink(), _Sink()], analysis_shards=2)
    ch.advance(3)
    ch.advance(7)
    for buf in ch.bufs:
        assert list(buf) == [W_ADVANCE, 7]
    assert ch.advances == 2  # one materialized barrier per shard


def test_advance_does_not_coalesce_across_an_emission():
    ch = ExchangeChannel([_Sink()], analysis_shards=2)
    ch.advance(3)
    ch.tx_start(0, 1)
    ch.advance(7)
    assert list(ch.bufs[0]) == [W_ADVANCE, 3, W_TXSTART, 0, 1, W_ADVANCE, 7]


def test_advance_does_not_coalesce_across_a_flush():
    sink = _Sink()
    ch = ExchangeChannel([sink], analysis_shards=2)
    ch.advance(3)
    ch.flush(0)
    ch.advance(7)
    assert [m[0] for m in sink.msgs] == ["C"]
    arr = array("q")
    arr.frombytes(sink.msgs[0][2])
    assert list(arr) == [W_ADVANCE, 3]
    assert list(ch.bufs[0]) == [W_ADVANCE, 7]


def test_exchange_channel_descs_use_the_owner_lane():
    ch = ExchangeChannel([_Sink()], analysis_shards=3)
    site = ("m", 0)
    d0, _ = ch.register_desc(site, (1, "f"), _kind("READ"), "m@0")
    d1, _ = ch.register_desc(site, (1, "g"), _kind("WRITE"), "m@0")
    assert (d0, d1) == (0, 4)  # base 0, stride analysis_shards + 1


def _kind(name):
    from repro.runtime.events import AccessKind

    return getattr(AccessKind, name)


# ----------------------------------------------------------------------
# ingest_edges seams
# ----------------------------------------------------------------------
def test_engine_ingest_edges_applies_in_order_and_tallies():
    from repro.graph.engine import IncrementalSccDigraph

    g = IncrementalSccDigraph()
    tally = g.ingest_edges([(1, 2), (2, 3), (3, 1), (1, 2)])
    assert sum(tally.values()) == 4
    assert g.same_component(1, 2) and g.same_component(2, 3)
    assert g.cyclic_members(1) == {1, 2, 3}


def test_icd_ingest_edges_takes_the_serial_edge_path():
    from repro.core.icd import ICD
    from repro.spec.specification import AtomicitySpecification
    from repro.runtime.program import Program

    seen = []
    icd = ICD(
        AtomicitySpecification(frozenset({"a", "b"}), frozenset()),
        on_scc=lambda comp: seen.append(sorted(t.tx_id for t in comp)),
    )
    icd.on_thread_start("T0")
    icd.on_thread_start("T1")
    icd.on_method_enter("T0", "a", 0)
    icd.on_method_enter("T1", "b", 0)
    txa, txb = icd.tx_manager.all_transactions[:2]
    created = icd.ingest_edges([(txa, txb, "wr"), (txb, txa, "rd")])
    assert [e is not None for e in created] == [True, True]
    assert created[0].kind == "wr" and created[0].src is txa
    tapped = []
    icd.edge_tap = lambda e: tapped.append(e)
    icd.ingest_edges([(txa, txb, "ww")])
    assert len(tapped) == 1 and tapped[0].kind == "ww"
