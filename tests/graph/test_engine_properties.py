"""Equivalence of the incremental engine with the reference algorithms.

The engine replaces the per-edge whole-graph DFS (PDG / Velodrome) and
the full Tarjan pass (ICD) with maintained certificates.  These tests
pin it to brute-force references on random edge streams:

* component membership after every edge equals the SCCs a from-scratch
  Tarjan computes on the same edge multiset;
* ``same_component`` answers exactly the "is there a cycle through
  this edge" question the old DFS answered;
* the maintained topological order stays valid over the condensation
  (``check_invariants``), which is the engine's acyclicity proof;
* work counters are monotone, so stats syncing can never regress.

This mirrors the executor-equivalence suite from the previous
optimization round (``tests/runtime/test_executor_incremental.py``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    EDGE_CYCLE,
    EDGE_DUPLICATE,
    EDGE_FAST,
    EDGE_REORDERED,
    EDGE_SELF,
    DirtySccScheduler,
    IncrementalSccDigraph,
)

edges_strategy = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    min_size=0,
    max_size=60,
)


def tarjan_sccs(edges):
    """From-scratch Tarjan over the accumulated edge list (reference)."""
    adj = {}
    nodes = set()
    for src, dst in edges:
        nodes.update((src, dst))
        adj.setdefault(src, set()).add(dst)
    index_of, lowlink, on_stack = {}, {}, set()
    stack, sccs = [], []
    counter = [0]

    def strongconnect(root):
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adj.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in sorted(nodes):
        if node not in index_of:
            strongconnect(node)
    return {node: frozenset(c) for c in sccs for node in c}


def path_exists(edges, start, target):
    """Reference per-edge DFS: is there a ``start`` ⇝ ``target`` path?"""
    adj = {}
    for src, dst in edges:
        adj.setdefault(src, set()).add(dst)
    seen, stack = {start}, [start]
    while stack:
        node = stack.pop()
        if node == target:
            return True
        for succ in adj.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


@settings(max_examples=150, deadline=None)
@given(edges_strategy)
def test_components_match_full_tarjan_after_every_edge(edges):
    engine = IncrementalSccDigraph()
    inserted = []
    for src, dst in edges:
        if src == dst:
            continue  # clients never insert self-edges
        engine.add_edge(src, dst)
        inserted.append((src, dst))
        engine.check_invariants()
        reference = tarjan_sccs(inserted)
        for node in {n for e in inserted for n in e}:
            assert engine.component_members(node) == set(reference[node])
            assert engine.in_cycle(node) == (len(reference[node]) > 1)


@settings(max_examples=150, deadline=None)
@given(edges_strategy)
def test_same_component_answers_the_old_cycle_check(edges):
    """After adding (src, dst), the old DFS asked: path dst ⇝ src?

    The engine answers with ``same_component`` — both endpoints on a
    cycle through the new edge iff they share an SCC.
    """
    engine = IncrementalSccDigraph()
    inserted = []
    for src, dst in edges:
        if src == dst:
            continue
        engine.add_edge(src, dst)
        inserted.append((src, dst))
        assert engine.same_component(src, dst) == path_exists(
            inserted, dst, src
        )


@settings(max_examples=100, deadline=None)
@given(edges_strategy)
def test_outcomes_and_counter_monotonicity(edges):
    engine = IncrementalSccDigraph()
    previous = (0, 0, 0, 0)
    for src, dst in edges:
        if src == dst:
            continue
        before_same = engine.same_component(src, dst)
        outcome = engine.add_edge(src, dst)
        if before_same:
            assert outcome == EDGE_SELF
        else:
            assert outcome in (
                EDGE_FAST,
                EDGE_REORDERED,
                EDGE_CYCLE,
                EDGE_DUPLICATE,
            )
        s = engine.stats
        current = (s.edges, s.search_visits, s.merges, s.merged_nodes)
        assert all(c >= p for c, p in zip(current, previous))
        previous = current


@settings(max_examples=100, deadline=None)
@given(edges_strategy, st.sets(st.integers(0, 14), max_size=8))
def test_forget_only_drops_acyclic_singletons(edges, to_forget):
    engine = IncrementalSccDigraph()
    inserted = []
    for src, dst in edges:
        if src == dst:
            continue
        engine.add_edge(src, dst)
        inserted.append((src, dst))
    engine.forget(to_forget)
    engine.check_invariants()
    # merged components must survive a forget: they are the acyclicity
    # certificate for every later membership query
    reference = tarjan_sccs(inserted)
    for node in {n for e in inserted for n in e}:
        if len(reference[node]) > 1:
            assert engine.component_members(node) == set(reference[node])


@settings(max_examples=100, deadline=None)
@given(edges_strategy)
def test_pdg_engine_and_legacy_find_identical_cycles(edges):
    """The engine-gated PDG reports the exact cycles the old DFS did.

    Not just the same cyclic/acyclic verdicts: the discovered edge
    lists must be identical (blame assignment and dedup keys hang off
    them), while the engine never visits more nodes than the
    whole-graph search it replaces.
    """
    from repro.core.pdg import PDG

    fast, slow = PDG(use_engine=True), PDG(use_engine=False)
    for src, dst in edges:
        engine_edge = fast.add_edge(src, dst)
        legacy_edge = slow.add_edge(src, dst)
        assert (engine_edge is None) == (legacy_edge is None)
        if engine_edge is None:
            continue
        engine_cycle = fast.find_cycle_through(engine_edge)
        legacy_cycle = slow.find_cycle_through(legacy_edge)
        if legacy_cycle is None:
            assert engine_cycle is None
        else:
            assert [(e.src, e.dst, e.order) for e in engine_cycle] == [
                (e.src, e.dst, e.order) for e in legacy_cycle
            ]
    assert fast.nodes() == slow.nodes()
    assert fast.nodes_visited <= slow.nodes_visited


cross_ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),  # source thread
        st.integers(0, 3),  # source back-offset on that thread's chain
        st.integers(0, 1),  # destination thread offset (never the same)
        st.integers(0, 3),  # destination back-offset
    ),
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(cross_ops_strategy)
def test_scheduler_matches_reference_sccs_over_chains(ops):
    """The chain-collapsed scheduler against full Tarjan with intra edges.

    The reference graph contains every program-order (intra) edge plus
    the cross edges; the scheduler's engine only ever sees cross-edge
    endpoints.  Pinned properties:

    * clean skip iff the reference SCC is a singleton — the skip can
      never hide a cyclic component;
    * an unchanged skip only re-finds a component an earlier full pass
      already resolved, unchanged — exactly what ICD's processed-SCC
      dedup would drop;
    * a returned frontier's members are exactly the registered part of
      the reference SCC, and its windows admit every member including
      the unregistered chain interiors Tarjan must traverse.
    """
    scheduler = DirtySccScheduler()
    chains = {0: [], 1: [], 2: []}
    chain_of = {}
    reference_edges = []
    registered = set()
    resolved = {}
    next_id = 0

    def tx_on(thread, back):
        nonlocal next_id
        while len(chains[thread]) < back + 1:
            if chains[thread]:
                reference_edges.append((chains[thread][-1], next_id))
            chains[thread].append(next_id)
            chain_of[next_id] = thread
            next_id += 1
        return chains[thread][-1 - back]

    for src_thread, src_back, dst_offset, dst_back in ops:
        dst_thread = (src_thread + 1 + dst_offset) % 3
        src = tx_on(src_thread, src_back)
        dst = tx_on(dst_thread, dst_back)
        scheduler.note_cross_edge(src, f"T{src_thread}", dst, f"T{dst_thread}")
        registered.update((src, dst))
        reference_edges.append((src, dst))
        reference = tarjan_sccs(reference_edges)
        for node in (src, dst):
            frontier = scheduler.frontier_for(node)
            scc = reference[node]
            if frontier is None:
                if scheduler.last_skip_clean:
                    # acyclic-certificate skip: Tarjan would have
                    # computed a non-cyclic singleton
                    assert len(scc) == 1
                else:
                    # unchanged-component skip: the pass would re-find
                    # the already-resolved set
                    assert resolved.get(node) == scc
            else:
                assert frontier.members == {
                    m for m in scc if m in registered
                }
                for member in scc:
                    assert frontier.admits(f"T{chain_of[member]}", member)
                # a full pass resolves the component: it stays skipped
                # until the next merge changes its membership
                scheduler.note_checked(node, set(scc))
                for member in scc:
                    resolved[member] = scc
