"""Octet's happens-before theorem, validated dynamically."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.icd import ICD
from repro.oracle.happens_before import HappensBeforeTracker
from repro.oracle.vector_clock import VectorClock
from repro.runtime.executor import Executor
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification
from repro.workloads import build

from tests.util import counter_program, spec_for


class TestVectorClock:
    def test_tick_and_get(self):
        clock = VectorClock().tick("A").tick("A")
        assert clock.get("A") == 2
        assert clock.get("B") == 0

    def test_join_is_pointwise_max(self):
        a = VectorClock({"A": 3, "B": 1})
        b = VectorClock({"B": 5, "C": 2})
        a.join(b)
        assert a == VectorClock({"A": 3, "B": 5, "C": 2})

    def test_leq(self):
        small = VectorClock({"A": 1})
        big = VectorClock({"A": 2, "B": 1})
        assert small.leq(big)
        assert not big.leq(small)

    def test_copy_is_independent(self):
        a = VectorClock({"A": 1})
        b = a.copy().tick("A")
        assert a.get("A") == 1 and b.get("A") == 2


def run_with_tracker(program, scheduler):
    spec = spec_for(program) if hasattr(program, "methods") else None
    icd = ICD(spec)
    tracker = HappensBeforeTracker()
    icd.octet.add_listener(tracker)
    Executor(program, scheduler, [icd, tracker]).run()
    return tracker


class TestSoundnessTheorem:
    def test_counter_program_fully_ordered(self):
        program = counter_program(threads=3, iterations=20)
        tracker = run_with_tracker(
            program, RandomScheduler(seed=5, switch_prob=0.8)
        )
        assert tracker.verify() == []

    def test_catalog_workloads_fully_ordered(self):
        for name in ("hsqldb6", "montecarlo", "avrora9"):
            program = build(name)
            spec = AtomicitySpecification.initial(program)
            icd = ICD(spec)
            tracker = HappensBeforeTracker()
            icd.octet.add_listener(tracker)
            Executor(
                program, RandomScheduler(seed=3, switch_prob=0.6),
                [icd, tracker],
            ).run()
            failures = tracker.verify()
            assert failures == [], (name, [str(f) for f in failures[:3]])

    @given(st.integers(0, 10_000), st.floats(0.1, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_random_schedules_fully_ordered(self, seed, switch_prob):
        program = counter_program(threads=3, iterations=10)
        tracker = run_with_tracker(
            program, RandomScheduler(seed=seed, switch_prob=switch_prob)
        )
        assert tracker.verify() == []

    def test_detector_actually_detects(self):
        """Sanity: the validator is not vacuous — removing the joins
        produces ordering violations on a racy program."""
        program = counter_program(threads=3, iterations=15)
        spec = spec_for(program)
        icd = ICD(spec)
        tracker = HappensBeforeTracker()
        # deliberately NOT registering the tracker with Octet: without
        # the transition joins, cross-thread conflicts are unordered
        Executor(
            program, RandomScheduler(seed=5, switch_prob=0.8), [icd, tracker]
        ).run()
        assert tracker.verify() != []
