"""The unsound Velodrome variant."""

import pytest

from repro.runtime.scheduler import RandomScheduler
from repro.velodrome.checker import VelodromeChecker
from repro.velodrome.unsound import MetadataRaceError, UnsoundVelodrome

from tests.util import counter_program, spec_for


def scheduler(seed=1, switch=0.8):
    return RandomScheduler(seed=seed, switch_prob=switch)


def _locality_program():
    """Transactions re-reading the same field: the unsound variant's
    metadata is already current on the repeats, so it skips their
    synchronization."""
    from repro.runtime.ops import Invoke, Read, Write
    from repro.runtime.program import Program

    program = Program("locality")
    shared = program.add_global_object("shared")

    def scan(ctx):
        for _ in range(6):
            yield Read(shared, "x")
        yield Write(shared, "x", 1)

    def worker(ctx):
        for _ in range(10):
            yield Invoke("scan")

    program.method(scan, name="scan")
    program.method(worker, name="worker")
    program.mark_entry("worker")
    program.add_thread("A", "worker")
    program.add_thread("B", "worker")
    return program


def test_pays_fewer_atomic_operations():
    sound = VelodromeChecker(spec_for(_locality_program())).run(
        _locality_program(), scheduler()
    )
    unsound = UnsoundVelodrome(spec_for(_locality_program())).run(
        _locality_program(), scheduler()
    )
    assert unsound.stats.atomic_operations < sound.stats.atomic_operations
    assert unsound.stats.memory_fences < sound.stats.memory_fences


def test_can_lose_metadata_updates_under_contention():
    program = counter_program(threads=4, iterations=40, gap=0)
    checker = UnsoundVelodrome(
        spec_for(program), seed=3, loss_prob=0.5, race_window=20
    )
    result = checker.run(program, scheduler(seed=3, switch=0.9))
    assert result.stats.lost_metadata_updates > 0


def test_crashes_under_metadata_race_storm():
    program = counter_program(threads=4, iterations=60, gap=0)
    checker = UnsoundVelodrome(
        spec_for(program), seed=1, race_window=30, crash_threshold=5
    )
    with pytest.raises(MetadataRaceError):
        checker.run(program, scheduler(seed=2, switch=0.9))


def test_no_crash_when_threshold_disabled():
    program = counter_program(threads=4, iterations=40, gap=0)
    checker = UnsoundVelodrome(spec_for(program), seed=1, crash_threshold=None)
    checker.run(program, scheduler(seed=2, switch=0.9))  # must not raise


def test_lock_protected_updates_never_race():
    program = counter_program(threads=4, iterations=30, locked=True)
    checker = UnsoundVelodrome(
        spec_for(program), seed=1, loss_prob=1.0, race_window=1000
    )
    result = checker.run(program, scheduler(seed=4, switch=0.9))
    assert result.stats.lost_metadata_updates == 0
    assert result.blamed_methods == set()


def test_deterministic_given_seed():
    def run():
        program = counter_program(threads=3, iterations=30, gap=0)
        checker = UnsoundVelodrome(
            spec_for(program), seed=9, loss_prob=0.3, race_window=10
        )
        result = checker.run(program, scheduler(seed=9, switch=0.9))
        return (
            result.stats.lost_metadata_updates,
            frozenset(result.blamed_methods),
        )

    assert run() == run()
