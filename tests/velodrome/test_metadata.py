"""Per-field metadata words."""

from repro.core.transactions import Transaction
from repro.velodrome.metadata import FieldMetadata, MetadataTable


def tx(tx_id, thread="T1"):
    return Transaction(tx_id, thread, f"m{tx_id}", False)


class TestFieldMetadata:
    def test_read_change_detection(self):
        meta = FieldMetadata()
        t = tx(1)
        assert meta.would_change_on_read(t)
        meta.last_readers["T1"] = t
        assert not meta.would_change_on_read(t)
        assert meta.would_change_on_read(tx(2, "T2"))

    def test_write_change_detection(self):
        meta = FieldMetadata()
        t = tx(1)
        assert meta.would_change_on_write(t)
        meta.last_writer = t
        assert not meta.would_change_on_write(t)
        # readers present: the write must clear them
        meta.last_readers["T2"] = tx(2, "T2")
        assert meta.would_change_on_write(t)


class TestMetadataTable:
    def test_lookup_creates_once(self):
        table = MetadataTable()
        a = table.lookup((1, "f"))
        assert table.lookup((1, "f")) is a
        assert len(table) == 1

    def test_peek_does_not_create(self):
        table = MetadataTable()
        assert table.peek((1, "f")) is None
        assert len(table) == 0

    def test_purge_collected(self):
        table = MetadataTable()
        meta = table.lookup((1, "f"))
        dead, live = tx(1), tx(2, "T2")
        dead.collected = True
        meta.last_writer = dead
        meta.last_readers = {"T1": dead, "T2": live}
        cleared = table.purge_collected()
        assert cleared == 2
        assert meta.last_writer is None
        assert meta.last_readers == {"T2": live}

    def test_live_reference_count(self):
        table = MetadataTable()
        meta = table.lookup((1, "f"))
        meta.last_writer = tx(1)
        meta.last_readers["T2"] = tx(2, "T2")
        assert table.live_reference_count() == 2
