"""Velodrome: online precise checking."""

import pytest

from repro.errors import OutOfMemoryBudget
from repro.runtime.ops import Compute, Invoke, Read, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler
from repro.velodrome.checker import VelodromeChecker

from tests.util import counter_program, spec_for, two_thread_program


def scheduler(seed=1):
    return RandomScheduler(seed=seed, switch_prob=0.7)


class TestDetection:
    def test_detects_split_rmw(self):
        program = counter_program(threads=2, iterations=12)
        result = VelodromeChecker(spec_for(program)).run(program, scheduler())
        assert result.blamed_methods == {"rmw"}
        assert result.stats.cycles_found > 0

    def test_clean_locked_program(self):
        program = counter_program(threads=2, iterations=12, locked=True)
        result = VelodromeChecker(spec_for(program)).run(program, scheduler())
        assert result.blamed_methods == set()

    def test_blames_overlapping_transaction(self):
        """The mixed intra/cross-edge cycle: B overlaps two of A's
        transactions and must be blamed."""
        program = Program("overlap")
        x = program.add_global_object("x")
        y = program.add_global_object("y")

        def a_body(ctx):
            yield Invoke("a_read_x")
            yield Invoke("a_write_y")

        def a_read_x(ctx):
            yield Read(x, "f")

        def a_write_y(ctx):
            yield Write(y, "f", 1)

        def b_whole(ctx):
            yield Write(x, "f", 2)       # before A reads x
            yield Compute(30)
            yield Read(y, "f")           # after A writes y

        def b_body(ctx):
            yield Invoke("b_whole")

        program.method(a_body, name="a_body")
        program.method(a_read_x, name="a_read_x")
        program.method(a_write_y, name="a_write_y")
        program.method(b_whole, name="b_whole")
        program.method(b_body, name="b_body")
        program.add_thread("A", "a_body")
        program.add_thread("B", "b_body")
        program.mark_entry("a_body")
        program.mark_entry("b_body")

        # schedule: B writes x, then A runs fully, then B reads y
        from repro.runtime.scheduler import ScriptedScheduler

        script = ["B", "B", "B", "B"] + ["A"] * 40 + ["B"] * 40
        result = VelodromeChecker(spec_for(program)).run(
            program, ScriptedScheduler(script)
        )
        assert result.blamed_methods == {"b_whole"}

    def test_per_access_atomic_cost(self):
        program = counter_program(threads=2, iterations=5)
        checker = VelodromeChecker(spec_for(program))
        result = checker.run(program, scheduler())
        # the sound checker pays one CAS + two fences per access
        assert result.stats.atomic_operations == result.stats.instrumented_accesses
        assert result.stats.memory_fences == 2 * result.stats.instrumented_accesses


class TestFilters:
    def test_monitor_regular_filter(self):
        program = counter_program(threads=2, iterations=8)
        checker = VelodromeChecker(
            spec_for(program), monitor_regular=lambda m: False
        )
        result = checker.run(program, scheduler())
        assert result.tx_stats.regular_transactions == 0
        assert result.tx_stats.unmonitored_transactions > 0

    def test_monitor_unary_disabled(self):
        program = counter_program(threads=2, iterations=8)
        checker = VelodromeChecker(spec_for(program), monitor_unary=False)
        result = checker.run(program, scheduler())
        assert result.tx_stats.unary_accesses == 0

    def test_arrays_skipped_by_default(self):
        from repro.runtime.ops import ArrayRead, ArrayWrite

        program = Program("arr")
        arr = program.add_global_array("arr", 4)

        def body(ctx):
            for i in range(4):
                value = yield ArrayRead(arr, i)
                yield ArrayWrite(arr, i, (value or 0) + 1)

        program.method(body, name="body")
        program.add_thread("A", "body")
        program.add_thread("B", "body")
        program.mark_entry("body")
        checker = VelodromeChecker(spec_for(program))
        result = checker.run(program, scheduler())
        assert result.stats.array_accesses_skipped > 0


class TestGcAndBudget:
    def test_gc_preserves_detection(self):
        def blamed(interval):
            program = counter_program(threads=3, iterations=20)
            checker = VelodromeChecker(spec_for(program), gc_interval=interval)
            return checker.run(program, scheduler(seed=5)).blamed_methods

        assert blamed(None) == blamed(4)

    def test_metadata_purged_after_collection(self):
        program = counter_program(threads=2, iterations=30)
        checker = VelodromeChecker(spec_for(program), gc_interval=4)
        checker.run(program, scheduler())
        assert checker.collector.stats.transactions_collected > 0
        for meta in checker.metadata._fields.values():
            if meta.last_writer is not None:
                assert not meta.last_writer.collected
            assert all(not tx.collected for tx in meta.last_readers.values())

    def test_memory_budget(self):
        program = counter_program(threads=2, iterations=100)
        checker = VelodromeChecker(
            spec_for(program), memory_budget=5, gc_interval=None
        )
        with pytest.raises(OutOfMemoryBudget):
            checker.run(program, scheduler())


class TestAgreementWithDoubleChecker:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_same_schedule_same_violations(self, seed):
        """Both sound+precise checkers must agree on identical
        executions (listeners never perturb the schedule)."""
        from repro.core.doublechecker import DoubleChecker

        program_v = counter_program(threads=3, iterations=15)
        velodrome = VelodromeChecker(spec_for(program_v)).run(
            program_v, scheduler(seed=seed)
        )
        program_d = counter_program(threads=3, iterations=15)
        double = DoubleChecker(spec_for(program_d)).run_single(
            program_d, scheduler(seed=seed)
        )
        assert velodrome.blamed_methods == double.blamed_methods
