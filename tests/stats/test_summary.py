"""Statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.summary import (
    confidence_interval95,
    geomean,
    mean,
    median,
    normalize,
)

positive_lists = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False), min_size=1, max_size=30
)


def test_mean():
    assert mean([1, 2, 3]) == 2


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])


def test_median_odd_even():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 2, 3]) == 2.5


def test_geomean_known_value():
    assert geomean([1, 100]) == pytest.approx(10.0)


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_confidence_interval_single_sample():
    center, half = confidence_interval95([5.0])
    assert center == 5.0 and half == 0.0


def test_confidence_interval_shrinks_with_samples():
    tight = confidence_interval95([10.0, 10.1] * 10)[1]
    loose = confidence_interval95([10.0, 10.1])[1]
    assert tight < loose


def test_normalize():
    assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
    with pytest.raises(ValueError):
        normalize([1.0], 0.0)


@given(positive_lists)
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) <= g * (1 + 1e-9)
    assert g <= max(values) * (1 + 1e-9)


@given(positive_lists)
def test_mean_at_least_geomean(values):
    # AM-GM inequality
    assert mean(values) >= geomean(values) * (1 - 1e-9)


@given(positive_lists, st.floats(min_value=0.1, max_value=10))
def test_geomean_scales_linearly(values, factor):
    scaled = geomean([v * factor for v in values])
    assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)
