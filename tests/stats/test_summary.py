"""Statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.summary import (
    confidence_interval95,
    geomean,
    mean,
    median,
    normalize,
)

positive_lists = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False), min_size=1, max_size=30
)


def test_mean():
    assert mean([1, 2, 3]) == 2


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])


def test_median_empty_raises():
    with pytest.raises(ValueError):
        median([])


def test_geomean_empty_raises():
    with pytest.raises(ValueError):
        geomean([])


def test_confidence_interval_empty_raises():
    with pytest.raises(ValueError):
        confidence_interval95([])


def test_median_odd_even():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 2, 3]) == 2.5


def test_geomean_known_value():
    assert geomean([1, 100]) == pytest.approx(10.0)


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_confidence_interval_single_sample():
    center, half = confidence_interval95([5.0])
    assert center == 5.0 and half == 0.0


def test_confidence_interval_shrinks_with_samples():
    tight = confidence_interval95([10.0, 10.1] * 10)[1]
    loose = confidence_interval95([10.0, 10.1])[1]
    assert tight < loose


def test_confidence_interval_two_samples_uses_t_table():
    # n=2 -> one degree of freedom -> t = 12.706
    values = [0.0, 2.0]
    center, half = confidence_interval95(values)
    assert center == 1.0
    # variance = 2, half = t * sqrt(2/2) = t
    assert half == pytest.approx(12.706)


def test_confidence_interval_t_table_fallback_beyond_25():
    # 27 samples -> 26 degrees of freedom, past the table: the normal
    # quantile 1.96 takes over
    values = [10.0, 12.0] * 13 + [11.0]
    m = mean(values)
    n = len(values)
    variance = sum((v - m) ** 2 for v in values) / (n - 1)
    expected = 1.96 * math.sqrt(variance / n)
    center, half = confidence_interval95(values)
    assert center == pytest.approx(m)
    assert half == pytest.approx(expected)


def test_confidence_interval_last_table_entry():
    # 26 samples -> 25 degrees of freedom, the table's final row (2.060)
    values = [10.0, 12.0] * 13
    m = mean(values)
    n = len(values)
    variance = sum((v - m) ** 2 for v in values) / (n - 1)
    _, half = confidence_interval95(values)
    assert half == pytest.approx(2.060 * math.sqrt(variance / n))


def test_normalize():
    assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
    with pytest.raises(ValueError):
        normalize([1.0], 0.0)


@given(positive_lists)
def test_geomean_is_positive(values):
    assert geomean(values) > 0.0


@given(positive_lists)
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) <= g * (1 + 1e-9)
    assert g <= max(values) * (1 + 1e-9)


@given(positive_lists)
def test_mean_at_least_geomean(values):
    # AM-GM inequality
    assert mean(values) >= geomean(values) * (1 - 1e-9)


@given(positive_lists, st.floats(min_value=0.1, max_value=10))
def test_geomean_scales_linearly(values, factor):
    scaled = geomean([v * factor for v in values])
    assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)
