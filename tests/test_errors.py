"""Exception types carry structured context."""

import pytest

from repro.errors import (
    DeadlockError,
    OutOfMemoryBudget,
    ProgramError,
    ReproError,
    SchedulerError,
    SpecificationError,
    StepLimitExceeded,
)


def test_hierarchy():
    for cls in (
        OutOfMemoryBudget,
        SpecificationError,
        ProgramError,
        DeadlockError,
        SchedulerError,
        StepLimitExceeded,
    ):
        assert issubclass(cls, ReproError)


def test_out_of_memory_payload():
    error = OutOfMemoryBudget("PCD", used=123, budget=100)
    assert error.component == "PCD"
    assert error.used == 123
    assert error.budget == 100
    assert "PCD" in str(error) and "123" in str(error)


def test_deadlock_lists_blocked_threads():
    error = DeadlockError({"B": "blocked-lock", "A": "waiting"})
    message = str(error)
    assert message.index("A: waiting") < message.index("B: blocked-lock")


def test_step_limit_payload():
    error = StepLimitExceeded(500)
    assert error.limit == 500
    assert "500" in str(error)
