"""The cost model: breakdowns, monotonicity, calibration anchors."""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.costs.model import CostBreakdown, CostModel, CostWeights
from repro.runtime.scheduler import RandomScheduler
from repro.velodrome.checker import VelodromeChecker

from tests.util import counter_program, spec_for


def scheduler(seed=1):
    return RandomScheduler(seed=seed, switch_prob=0.6)


@pytest.fixture(scope="module")
def results():
    model = CostModel()
    program = counter_program(threads=3, iterations=20)
    velodrome = VelodromeChecker(spec_for(program)).run(program, scheduler())

    program = counter_program(threads=3, iterations=20)
    checker = DoubleChecker(spec_for(program))
    single = checker.run_single(program, scheduler())

    program = counter_program(threads=3, iterations=20)
    first = DoubleChecker(spec_for(program)).run_first(program, scheduler())
    return model, velodrome, single, first


class TestBreakdowns:
    def test_velodrome_breakdown(self, results):
        model, velodrome, _, _ = results
        breakdown = model.velodrome(velodrome)
        assert breakdown.normalized_time > 1.0
        assert "synchronization" in breakdown.components
        # Section 5.3: synchronization dominates Velodrome's overhead
        assert breakdown.component_fraction("synchronization") > 0.5

    def test_single_breakdown_components(self, results):
        model, _, single, _ = results
        breakdown = model.double_checker_single(single)
        for key in ("octet", "idg", "logging", "pcd", "gc"):
            assert key in breakdown.components
        assert breakdown.normalized_time > 1.0

    def test_first_run_cheaper_than_single(self, results):
        model, _, single, first = results
        single_norm = model.double_checker_single(single).normalized_time
        first_norm = model.double_checker_first(first).normalized_time
        assert first_norm < single_norm

    def test_gc_fraction_bounded(self, results):
        model, _, single, _ = results
        fraction = model.double_checker_single(single).gc_fraction
        assert 0.0 <= fraction < 1.0

    def test_no_logging_means_no_logging_cost(self, results):
        model, _, _, first = results
        breakdown = model.double_checker_first(first)
        assert "logging" not in breakdown.components


class TestWeights:
    def test_custom_weights_respected(self, results):
        _, velodrome, _, _ = results
        cheap = CostModel(CostWeights(atomic_op=0.0, fence=0.0))
        expensive = CostModel(CostWeights(atomic_op=100.0, fence=50.0))
        assert (
            cheap.velodrome(velodrome).normalized_time
            < expensive.velodrome(velodrome).normalized_time
        )

    def test_weights_are_immutable(self):
        with pytest.raises(AttributeError):
            CostWeights().atomic_op = 1.0

    def test_breakdown_arithmetic(self):
        breakdown = CostBreakdown(base_units=100.0)
        breakdown.components["a"] = 50.0
        breakdown.components["b"] = 50.0
        assert breakdown.overhead_units == 100.0
        assert breakdown.total_units == 200.0
        assert breakdown.normalized_time == 2.0
        assert breakdown.component_fraction("a") == 0.5
