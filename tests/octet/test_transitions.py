"""Exhaustive verification of Table 1's transition relation."""

import pytest

from repro.octet.states import StateKind, rd_ex, rd_ex_int, rd_sh, wr_ex
from repro.octet.transitions import TransitionKind, classify
from repro.runtime.events import AccessKind

R, W = AccessKind.READ, AccessKind.WRITE


def c(state, access, thread="T2", thread_counter=0, next_counter=10):
    return classify(state, access, thread, thread_counter, next_counter)


class TestSameState:
    """The 'Same state' rows: fast path, no dependence."""

    def test_wrex_read_by_owner(self):
        out = c(wr_ex("T1"), R, thread="T1")
        assert out.kind is TransitionKind.SAME_STATE
        assert out.new_state is None

    def test_wrex_write_by_owner(self):
        assert c(wr_ex("T1"), W, thread="T1").kind is TransitionKind.SAME_STATE

    def test_rdex_read_by_owner(self):
        assert c(rd_ex("T1"), R, thread="T1").kind is TransitionKind.SAME_STATE

    def test_rdsh_read_with_fresh_counter(self):
        out = c(rd_sh(5), R, thread_counter=5)
        assert out.kind is TransitionKind.SAME_STATE

    def test_rdsh_read_with_newer_counter(self):
        assert c(rd_sh(5), R, thread_counter=9).kind is TransitionKind.SAME_STATE


class TestUpgrading:
    """The 'Upgrading' rows."""

    def test_rdex_write_by_owner_upgrades_to_wrex(self):
        out = c(rd_ex("T1"), W, thread="T1")
        assert out.kind is TransitionKind.UPGRADING_WR_EX
        assert out.new_state == wr_ex("T1")
        assert not out.kind.may_carry_dependence()

    def test_rdex_read_by_other_upgrades_to_rdsh(self):
        out = c(rd_ex("T1"), R, thread="T2", next_counter=42)
        assert out.kind is TransitionKind.UPGRADING_RD_SH
        assert out.new_state == rd_sh(42)
        assert out.kind.may_carry_dependence()


class TestFence:
    """The 'Fence' row: stale rdShCnt triggers a fence, state unchanged."""

    def test_stale_counter_triggers_fence(self):
        out = c(rd_sh(5), R, thread_counter=3)
        assert out.kind is TransitionKind.FENCE
        assert out.new_state is None
        assert out.thread_counter_update == 5
        assert out.kind.may_carry_dependence()


class TestConflicting:
    """The 'Conflicting' rows: coordination required."""

    def test_wrex_write_by_other(self):
        out = c(wr_ex("T1"), W, thread="T2")
        assert out.kind is TransitionKind.CONFLICTING_WR_WR
        assert out.new_state == wr_ex("T2")

    def test_wrex_read_by_other(self):
        out = c(wr_ex("T1"), R, thread="T2")
        assert out.kind is TransitionKind.CONFLICTING_WR_RD
        assert out.new_state == rd_ex("T2")

    def test_rdex_write_by_other(self):
        out = c(rd_ex("T1"), W, thread="T2")
        assert out.kind is TransitionKind.CONFLICTING_RD_WR
        assert out.new_state == wr_ex("T2")

    def test_rdsh_write_by_anyone(self):
        out = c(rd_sh(5), W, thread="T2")
        assert out.kind is TransitionKind.CONFLICTING_SH_WR
        assert out.new_state == wr_ex("T2")

    def test_rdsh_write_even_by_recent_reader(self):
        # Table 1: RdSh + write is conflicting regardless of the writer
        out = c(rd_sh(5), W, thread="T2", thread_counter=5)
        assert out.kind is TransitionKind.CONFLICTING_SH_WR

    @pytest.mark.parametrize(
        "kind",
        [
            TransitionKind.CONFLICTING_WR_WR,
            TransitionKind.CONFLICTING_WR_RD,
            TransitionKind.CONFLICTING_RD_WR,
            TransitionKind.CONFLICTING_SH_WR,
        ],
    )
    def test_conflicting_predicates(self, kind):
        assert kind.is_conflicting()
        assert kind.may_carry_dependence()
        assert not kind.is_fast_path()


class TestInitial:
    def test_first_read_installs_rdex(self):
        out = c(None, R, thread="T3")
        assert out.kind is TransitionKind.INITIAL
        assert out.new_state == rd_ex("T3")

    def test_first_write_installs_wrex(self):
        out = c(None, W, thread="T3")
        assert out.kind is TransitionKind.INITIAL
        assert out.new_state == wr_ex("T3")


def test_intermediate_state_rejected():
    with pytest.raises(ValueError):
        c(rd_ex_int("T1"), R)


def test_exhaustive_coverage_of_state_access_pairs():
    """Every (state-kind, access, same/other-thread) pair classifies."""
    states = [None, wr_ex("T1"), rd_ex("T1"), rd_sh(5)]
    for state in states:
        for access in (R, W):
            for thread in ("T1", "T2"):
                for counter in (0, 5, 9):
                    out = classify(state, access, thread, counter, 10)
                    assert isinstance(out.kind, TransitionKind)
