"""Hypothesis properties of the pure Table 1 classification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octet.states import StateKind, rd_ex, rd_sh, wr_ex
from repro.octet.transitions import TransitionKind, classify
from repro.runtime.events import AccessKind

threads = st.sampled_from(["T1", "T2", "T3"])
accesses = st.sampled_from([AccessKind.READ, AccessKind.WRITE])
counters = st.integers(0, 20)


@st.composite
def states(draw):
    kind = draw(st.sampled_from(["none", "wrex", "rdex", "rdsh"]))
    if kind == "none":
        return None
    if kind == "wrex":
        return wr_ex(draw(threads))
    if kind == "rdex":
        return rd_ex(draw(threads))
    return rd_sh(draw(st.integers(1, 20)))


@given(states(), accesses, threads, counters, st.integers(21, 40))
@settings(max_examples=300, deadline=None)
def test_classification_is_total_and_owner_correct(
    state, access, thread, counter, next_counter
):
    out = classify(state, access, thread, counter, next_counter)

    # totality: every input classifies to exactly one kind
    assert isinstance(out.kind, TransitionKind)

    new = out.new_state
    if access is AccessKind.WRITE:
        # after any write, the object is (or stays) WrEx for the writer
        if new is not None:
            assert new.kind is StateKind.WR_EX and new.owner == thread
        else:
            assert out.kind in (TransitionKind.SAME_STATE,)
            assert state.kind is StateKind.WR_EX and state.owner == thread
    else:
        # after a read the thread can read the object without a barrier:
        # it owns it exclusively, or the object is RdSh with the thread's
        # counter brought current
        if new is not None:
            assert (
                new.kind in (StateKind.RD_EX, StateKind.WR_EX)
                and new.owner == thread
            ) or new.kind is StateKind.RD_SH
        elif out.kind is TransitionKind.FENCE:
            assert out.thread_counter_update == state.counter
        else:
            assert out.kind is TransitionKind.SAME_STATE


@given(states(), accesses, threads, counters, st.integers(21, 40))
@settings(max_examples=300, deadline=None)
def test_fast_path_never_changes_state(state, access, thread, counter, nxt):
    out = classify(state, access, thread, counter, nxt)
    if out.kind.is_fast_path():
        assert out.new_state is None
        assert out.thread_counter_update is None


@given(states(), accesses, threads, counters, st.integers(21, 40))
@settings(max_examples=300, deadline=None)
def test_dependence_flag_matches_table(state, access, thread, counter, nxt):
    """The 'Cross-thread dependence?' column: only conflicting,
    RdSh-upgrading and fence transitions may carry one."""
    out = classify(state, access, thread, counter, nxt)
    if out.kind in (
        TransitionKind.SAME_STATE,
        TransitionKind.INITIAL,
        TransitionKind.UPGRADING_WR_EX,
    ):
        assert not out.kind.may_carry_dependence()
    else:
        assert out.kind.may_carry_dependence()


@given(states(), threads, counters, st.integers(21, 40))
@settings(max_examples=200, deadline=None)
def test_classification_is_deterministic(state, thread, counter, nxt):
    first = classify(state, AccessKind.READ, thread, counter, nxt)
    second = classify(state, AccessKind.READ, thread, counter, nxt)
    assert first.kind == second.kind
    assert first.new_state == second.new_state
