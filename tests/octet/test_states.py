"""Octet state values."""

import pytest

from repro.octet.states import (
    OctetState,
    StateKind,
    rd_ex,
    rd_ex_int,
    rd_sh,
    wr_ex,
    wr_ex_int,
)


def test_constructors():
    assert wr_ex("T1").kind is StateKind.WR_EX
    assert rd_ex("T1").owner == "T1"
    assert rd_sh(5).counter == 5


def test_rdsh_requires_counter():
    with pytest.raises(ValueError):
        OctetState(StateKind.RD_SH)


def test_rdsh_rejects_owner():
    with pytest.raises(ValueError):
        OctetState(StateKind.RD_SH, owner="T1", counter=1)


def test_exclusive_requires_owner():
    with pytest.raises(ValueError):
        OctetState(StateKind.WR_EX)


def test_exclusive_rejects_counter():
    with pytest.raises(ValueError):
        OctetState(StateKind.RD_EX, owner="T1", counter=3)


def test_predicates():
    assert wr_ex("T").is_exclusive()
    assert rd_ex("T").is_exclusive()
    assert not rd_sh(1).is_exclusive()
    assert rd_ex_int("T").is_intermediate()
    assert wr_ex_int("T").is_intermediate()
    assert not wr_ex("T").is_intermediate()


def test_str_forms():
    assert str(wr_ex("T1")) == "WrEx(T1)"
    assert str(rd_sh(7)) == "RdSh(7)"


def test_states_are_values():
    assert wr_ex("T1") == wr_ex("T1")
    assert wr_ex("T1") != wr_ex("T2")
    assert rd_sh(1) != rd_sh(2)
