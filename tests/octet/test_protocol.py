"""The coordination protocol model."""

from repro.octet.protocol import CoordinationProtocol, ProtocolKind


def test_explicit_for_running_threads():
    protocol = CoordinationProtocol()
    round_ = protocol.coordinate("T1", ["T2", "T3"])
    assert round_.explicit_count == 2
    assert round_.implicit_count == 0
    assert all(
        r.protocol is ProtocolKind.EXPLICIT for r in round_.responders
    )


def test_implicit_for_blocked_threads():
    blocked = {"T2"}
    protocol = CoordinationProtocol(lambda t: t in blocked)
    round_ = protocol.coordinate("T1", ["T2", "T3"])
    assert round_.implicit_count == 1
    assert round_.explicit_count == 1
    by_name = {r.thread_name: r for r in round_.responders}
    assert by_name["T2"].protocol is ProtocolKind.IMPLICIT
    assert by_name["T2"].invoked_by_requester
    assert not by_name["T3"].invoked_by_requester


def test_requester_never_responds_to_itself():
    protocol = CoordinationProtocol()
    round_ = protocol.coordinate("T1", ["T1", "T2"])
    assert [r.thread_name for r in round_.responders] == ["T2"]


def test_stats_accumulate():
    blocked = {"T3"}
    protocol = CoordinationProtocol(lambda t: t in blocked)
    protocol.coordinate("T1", ["T2"])
    protocol.coordinate("T1", ["T3"])
    stats = protocol.stats()
    assert stats["rounds"] == 2
    assert stats["explicit_responses"] == 1
    assert stats["implicit_responses"] == 1
    assert stats["holds_placed"] == 1


def test_empty_responder_list():
    protocol = CoordinationProtocol()
    round_ = protocol.coordinate("T1", [])
    assert round_.responders == []
    assert protocol.stats()["rounds"] == 1
