"""Property-based tests of the Octet state machine (hypothesis)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octet.runtime import OctetRuntime
from repro.octet.states import StateKind
from repro.octet.transitions import TransitionKind
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap

THREADS = ["T1", "T2", "T3"]

#: a random access script: (thread index, object index, is_write)
scripts = st.lists(
    st.tuples(
        st.integers(0, len(THREADS) - 1),
        st.integers(0, 2),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


def run_script(script):
    heap = Heap()
    objects = [heap.alloc(f"o{i}") for i in range(3)]
    runtime = OctetRuntime(live_threads=lambda: list(THREADS))
    records = []
    for seq, (t, o, is_write) in enumerate(script, start=1):
        event = AccessEvent(
            seq=seq,
            thread_name=THREADS[t],
            obj=objects[o],
            fieldname="f",
            kind=AccessKind.WRITE if is_write else AccessKind.READ,
            is_sync=False,
            is_array=False,
            site=Site("m", 0),
        )
        records.append(runtime.observe(event))
    return runtime, objects, records


@given(scripts)
@settings(max_examples=150, deadline=None)
def test_states_never_left_intermediate(script):
    runtime, objects, _ = run_script(script)
    for state in runtime.snapshot_states().values():
        assert not state.is_intermediate()


@given(scripts)
@settings(max_examples=150, deadline=None)
def test_write_always_ends_in_wrex_for_writer(script):
    runtime, objects, records = run_script(script)
    # replay: after each write by T, the object's state must be WrEx(T)
    states = {}
    for (t, o, is_write), record in zip(script, records):
        if is_write:
            assert record.new_state is None or (
                record.new_state.kind is StateKind.WR_EX
                and record.new_state.owner == THREADS[t]
            )
            if record.new_state is None:  # same-state fast path
                assert record.old_state.kind is StateKind.WR_EX
                assert record.old_state.owner == THREADS[t]


@given(scripts)
@settings(max_examples=150, deadline=None)
def test_read_fast_path_only_when_safe(script):
    """A read takes the fast path only if the thread owns the object or
    its rdShCnt is current — the conditions of the read barrier."""
    counters = {t: 0 for t in THREADS}
    for (t, o, is_write), record in zip(script, run_script(script)[2]):
        thread = THREADS[t]
        if not is_write and record.kind is TransitionKind.SAME_STATE:
            state = record.old_state
            if state.kind is StateKind.RD_SH:
                assert counters[thread] >= state.counter
            else:
                assert state.owner == thread
        if record.kind is TransitionKind.FENCE:
            counters[thread] = record.old_state.counter
        if record.kind is TransitionKind.UPGRADING_RD_SH:
            counters[thread] = record.new_state.counter


@given(scripts)
@settings(max_examples=150, deadline=None)
def test_global_counter_increments_only_on_rdsh_upgrades(script):
    runtime, _, records = run_script(script)
    upgrades = sum(
        1 for r in records if r.kind is TransitionKind.UPGRADING_RD_SH
    )
    assert runtime.g_rdsh_counter == upgrades
    # RdSh counters are unique per upgrade and at most the global counter
    seen = set()
    for record in records:
        if record.kind is TransitionKind.UPGRADING_RD_SH:
            assert record.rdsh_counter not in seen
            seen.add(record.rdsh_counter)
            assert record.rdsh_counter <= runtime.g_rdsh_counter


@given(scripts)
@settings(max_examples=150, deadline=None)
def test_barrier_counts_are_consistent(script):
    runtime, _, records = run_script(script)
    stats = runtime.stats
    assert stats.barriers == len(script)
    assert stats.barriers == (
        stats.fast_path
        + stats.initial
        + stats.upgrading_wr_ex
        + stats.upgrading_rd_sh
        + stats.fences
        + stats.conflicting
    )


@given(scripts)
@settings(max_examples=100, deadline=None)
def test_conflicting_transitions_always_coordinate(script):
    _, _, records = run_script(script)
    for record in records:
        if record.kind.is_conflicting():
            assert record.coordination is not None
            assert record.coordination.responders
            names = {r.thread_name for r in record.coordination.responders}
            assert record.event.thread_name not in names
        else:
            assert record.coordination is None
