"""OctetRuntime: state table maintenance, counters, listener hooks."""

import itertools

import pytest

from repro.octet.runtime import OctetListener, OctetRuntime
from repro.octet.states import StateKind, rd_sh, wr_ex
from repro.octet.transitions import TransitionKind
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap

_seq = itertools.count(1)


def make_event(obj, thread, kind):
    return AccessEvent(
        seq=next(_seq),
        thread_name=thread,
        obj=obj,
        fieldname="f",
        kind=kind,
        is_sync=False,
        is_array=False,
        site=Site("m", 0),
    )


class Hooks(OctetListener):
    def __init__(self):
        self.calls = []

    def on_conflicting(self, record):
        self.calls.append(("conflicting", record))

    def on_upgrading_rd_sh(self, record):
        self.calls.append(("up_rdsh", record))

    def on_upgrading_wr_ex(self, record):
        self.calls.append(("up_wrex", record))

    def on_fence(self, record):
        self.calls.append(("fence", record))

    def on_initial(self, record):
        self.calls.append(("initial", record))


@pytest.fixture
def runtime_and_hooks():
    live = ["T1", "T2", "T3"]
    runtime = OctetRuntime(live_threads=lambda: live)
    hooks = Hooks()
    runtime.add_listener(hooks)
    return runtime, hooks


@pytest.fixture
def obj():
    return Heap().alloc("o")


def read(runtime, obj, thread):
    return runtime.observe(make_event(obj, thread, AccessKind.READ))


def write(runtime, obj, thread):
    return runtime.observe(make_event(obj, thread, AccessKind.WRITE))


def test_first_write_installs_wrex(runtime_and_hooks, obj):
    runtime, hooks = runtime_and_hooks
    record = write(runtime, obj, "T1")
    assert record.kind is TransitionKind.INITIAL
    assert runtime.state_of(obj.oid) == wr_ex("T1")
    assert hooks.calls[0][0] == "initial"


def test_owner_accesses_take_fast_path(runtime_and_hooks, obj):
    runtime, _ = runtime_and_hooks
    write(runtime, obj, "T1")
    for _ in range(5):
        record = read(runtime, obj, "T1")
        assert record.kind is TransitionKind.SAME_STATE
    assert runtime.stats.fast_path == 5
    assert runtime.stats.barriers == 6


def test_conflicting_read_moves_ownership(runtime_and_hooks, obj):
    runtime, hooks = runtime_and_hooks
    write(runtime, obj, "T1")
    record = read(runtime, obj, "T2")
    assert record.kind is TransitionKind.CONFLICTING_WR_RD
    assert record.prior_owner == "T1"
    assert record.coordination.responders[0].thread_name == "T1"
    assert runtime.state_of(obj.oid).owner == "T2"
    assert runtime.state_of(obj.oid).kind is StateKind.RD_EX


def test_upgrade_to_rdsh_increments_global_counter(runtime_and_hooks, obj):
    runtime, hooks = runtime_and_hooks
    read(runtime, obj, "T1")          # RdEx(T1)
    record = read(runtime, obj, "T2")  # RdSh(1)
    assert record.kind is TransitionKind.UPGRADING_RD_SH
    assert runtime.g_rdsh_counter == 1
    assert runtime.state_of(obj.oid) == rd_sh(1)
    # the upgrading thread's counter is brought current
    assert runtime.thread_counter("T2") == 1


def test_global_rdsh_counter_orders_upgrades(runtime_and_hooks):
    runtime, _ = runtime_and_hooks
    heap = Heap()
    o, p = heap.alloc("o"), heap.alloc("p")
    read(runtime, o, "T1")
    read(runtime, o, "T2")  # o -> RdSh(1)
    read(runtime, p, "T1")
    read(runtime, p, "T3")  # p -> RdSh(2)
    assert runtime.state_of(o.oid) == rd_sh(1)
    assert runtime.state_of(p.oid) == rd_sh(2)


def test_fence_for_stale_reader(runtime_and_hooks, obj):
    runtime, hooks = runtime_and_hooks
    read(runtime, obj, "T1")
    read(runtime, obj, "T2")  # RdSh(1)
    record = read(runtime, obj, "T3")  # T3.rdShCnt = 0 < 1 -> fence
    assert record.kind is TransitionKind.FENCE
    assert runtime.thread_counter("T3") == 1
    assert runtime.stats.memory_fences_issued == 1
    # second read takes the fast path
    assert read(runtime, obj, "T3").kind is TransitionKind.SAME_STATE


def test_no_fence_when_counter_current(runtime_and_hooks):
    """A thread up to date via a newer RdSh object skips older fences."""
    runtime, _ = runtime_and_hooks
    heap = Heap()
    o, p = heap.alloc("o"), heap.alloc("p")
    read(runtime, o, "T1")
    read(runtime, o, "T2")    # o -> RdSh(1)
    read(runtime, p, "T1")
    read(runtime, p, "T3")    # p -> RdSh(2); T3.rdShCnt = 2
    record = read(runtime, o, "T3")  # 2 >= 1: no fence
    assert record.kind is TransitionKind.SAME_STATE


def test_rdsh_write_coordinates_with_all_other_threads(runtime_and_hooks, obj):
    runtime, hooks = runtime_and_hooks
    read(runtime, obj, "T1")
    read(runtime, obj, "T2")  # RdSh
    record = write(runtime, obj, "T3")
    assert record.kind is TransitionKind.CONFLICTING_SH_WR
    responders = {r.thread_name for r in record.coordination.responders}
    assert responders == {"T1", "T2"}


def test_upgrade_wrex_needs_no_coordination(runtime_and_hooks, obj):
    runtime, hooks = runtime_and_hooks
    read(runtime, obj, "T1")
    record = write(runtime, obj, "T1")
    assert record.kind is TransitionKind.UPGRADING_WR_EX
    assert record.coordination is None
    assert runtime.state_of(obj.oid) == wr_ex("T1")


def test_implicit_protocol_for_blocked_responder(obj):
    blocked = {"T1"}
    runtime = OctetRuntime(
        is_thread_blocked=lambda t: t in blocked,
        live_threads=lambda: ["T1", "T2"],
    )
    write(runtime, obj, "T1")
    record = write(runtime, obj, "T2")
    responder = record.coordination.responders[0]
    assert responder.protocol.value == "implicit"
    assert responder.invoked_by_requester
    assert runtime.protocol.stats()["holds_placed"] == 1


def test_explicit_protocol_for_running_responder(runtime_and_hooks, obj):
    runtime, _ = runtime_and_hooks
    write(runtime, obj, "T1")
    record = write(runtime, obj, "T2")
    assert record.coordination.responders[0].protocol.value == "explicit"
    assert runtime.protocol.stats()["explicit_responses"] == 1


def test_intermediate_states_entered_on_conflicts(runtime_and_hooks, obj):
    runtime, _ = runtime_and_hooks
    write(runtime, obj, "T1")
    write(runtime, obj, "T2")
    read(runtime, obj, "T1")
    assert runtime.intermediate_entries == 2


def test_stats_by_conflict_kind(runtime_and_hooks, obj):
    runtime, _ = runtime_and_hooks
    write(runtime, obj, "T1")
    write(runtime, obj, "T2")   # WrEx->WrEx
    read(runtime, obj, "T1")    # WrEx->RdEx
    write(runtime, obj, "T3")   # RdEx->WrEx
    kinds = runtime.stats.conflicting_by_kind
    assert kinds["conflicting-wrex-wrex"] == 1
    assert kinds["conflicting-wrex-rdex"] == 1
    assert kinds["conflicting-rdex-wrex"] == 1
    assert runtime.stats.slow_path() == 4  # 1 initial + 3 conflicting
