"""The inline same-state fast path and its batched hot counters."""

import itertools

import pytest

from repro.octet.runtime import (
    FASTPATH_ENV,
    OctetRuntime,
    barrier_fastpath_enabled,
)
from repro.octet.transitions import TransitionKind
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap

R, W = AccessKind.READ, AccessKind.WRITE
_seq = itertools.count(1)


def make_event(obj, thread, kind):
    return AccessEvent(
        seq=next(_seq),
        thread_name=thread,
        obj=obj,
        fieldname="f",
        kind=kind,
        is_sync=False,
        is_array=False,
        site=Site("m", 0),
    )


@pytest.fixture
def obj():
    return Heap().alloc("o")


class TestEscapeHatch:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        assert barrier_fastpath_enabled()
        assert OctetRuntime().fastpath

    @pytest.mark.parametrize("value", ["0", "false", "off", " 0 ", "FALSE"])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(FASTPATH_ENV, value)
        assert not barrier_fastpath_enabled()
        assert not OctetRuntime().fastpath

    @pytest.mark.parametrize("value", ["1", "", "on", "yes"])
    def test_other_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(FASTPATH_ENV, value)
        assert barrier_fastpath_enabled()

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "0")
        assert OctetRuntime(fastpath=True).fastpath
        monkeypatch.delenv(FASTPATH_ENV)
        assert not OctetRuntime(fastpath=False).fastpath


class TestInlineFastPath:
    def test_same_state_skips_classify_and_listeners(self, obj):
        runtime = OctetRuntime(fastpath=True)
        runtime.observe(make_event(obj, "T1", W))
        record = runtime.observe(make_event(obj, "T1", R))
        assert record.kind is TransitionKind.SAME_STATE
        assert record.old_state is record.new_state
        assert record.old_state is runtime.state_of(obj.oid)
        assert runtime.stats.fast_path == 1
        # the runtime's own inline shortcut is not the *fused* barrier
        assert runtime.stats.fast_path_fused == 0

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_both_arms_agree_on_records_and_stats(self, fastpath):
        """One interleaving with every same-state shape (WrEx/RdEx by
        owner, current RdSh read): identical records either way."""

        def run(arm):
            heap = Heap()
            a, b = heap.alloc("a"), heap.alloc("b")
            runtime = OctetRuntime(
                fastpath=arm, live_threads=lambda: ["T1", "T2"]
            )
            records = []
            for obj, thread, kind in [
                (a, "T1", W), (a, "T1", R), (a, "T1", W),   # WrEx by owner
                (b, "T1", R), (b, "T1", R),                 # RdEx by owner
                (b, "T2", R), (b, "T2", R), (b, "T1", R),   # RdSh reads
                (a, "T2", W), (a, "T2", W),                 # conflict, then WrEx
            ]:
                records.append(runtime.observe(make_event(obj, thread, kind)))
            return runtime, records

        fused_runtime, fused_records = run(True)
        ref_runtime, ref_records = run(False)
        assert [r.kind for r in fused_records] == [r.kind for r in ref_records]
        assert [repr(r.new_state) for r in fused_records] == [
            repr(r.new_state) for r in ref_records
        ]
        assert fused_runtime.stats == ref_runtime.stats


class TestHotCounterBatching:
    def test_reading_stats_flushes_pending_counts(self, obj):
        runtime = OctetRuntime(fastpath=True)
        runtime.observe(make_event(obj, "T1", W))
        for _ in range(5):
            runtime.observe(make_event(obj, "T1", R))
        # fast-path barriers accumulate in plain pending attributes...
        assert runtime._fastpath_pending == 5
        # ...and the stats property folds them in on read
        assert runtime.stats.barriers == 6
        assert runtime.stats.fast_path == 5
        assert runtime._fastpath_pending == 0

    def test_flush_is_idempotent(self, obj):
        runtime = OctetRuntime(fastpath=True)
        runtime.observe(make_event(obj, "T1", W))
        runtime.observe(make_event(obj, "T1", R))
        runtime.flush_hot_counters()
        runtime.flush_hot_counters()
        assert runtime.stats.barriers == 2
        assert runtime.stats.fast_path == 1

    def test_assigning_stats_discards_pending(self, obj):
        from repro.octet.runtime import OctetStats

        runtime = OctetRuntime(fastpath=True)
        runtime.observe(make_event(obj, "T1", W))
        runtime.observe(make_event(obj, "T1", R))
        runtime.stats = OctetStats()
        assert runtime.stats.barriers == 0
        assert runtime._barriers_pending == 0
