"""Octet runtime details: allocation states, sync pseudo-accesses,
ownership round trips."""

import itertools

from repro.octet.runtime import OctetRuntime
from repro.octet.states import StateKind
from repro.octet.transitions import TransitionKind
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap

_seq = itertools.count(1)


def event(obj, thread, kind, is_sync=False):
    return AccessEvent(
        seq=next(_seq), thread_name=thread, obj=obj, fieldname="f",
        kind=kind, is_sync=is_sync, is_array=False, site=Site("m", 0),
    )


def test_sync_accesses_drive_states_like_data_accesses():
    """Acquire/release pseudo-accesses move the lock object's state,
    so lock hand-offs create the happens-before edges ICD rides on."""
    runtime = OctetRuntime(live_threads=lambda: ["T1", "T2"])
    lock = Heap().alloc("lock")
    runtime.observe(event(lock, "T1", AccessKind.READ, is_sync=True))   # acq
    runtime.observe(event(lock, "T1", AccessKind.WRITE, is_sync=True))  # rel
    record = runtime.observe(
        event(lock, "T2", AccessKind.READ, is_sync=True)                # acq
    )
    assert record.kind is TransitionKind.CONFLICTING_WR_RD
    assert record.prior_owner == "T1"


def test_ownership_round_trip_returns_to_original_thread():
    runtime = OctetRuntime(live_threads=lambda: ["T1", "T2"])
    obj = Heap().alloc("o")
    runtime.observe(event(obj, "T1", AccessKind.WRITE))
    runtime.observe(event(obj, "T2", AccessKind.WRITE))
    record = runtime.observe(event(obj, "T1", AccessKind.WRITE))
    assert record.kind is TransitionKind.CONFLICTING_WR_WR
    state = runtime.state_of(obj.oid)
    assert state.kind is StateKind.WR_EX and state.owner == "T1"


def test_rdsh_object_can_return_to_exclusive_and_share_again():
    runtime = OctetRuntime(live_threads=lambda: ["T1", "T2", "T3"])
    obj = Heap().alloc("o")
    runtime.observe(event(obj, "T1", AccessKind.READ))   # RdEx(T1)
    runtime.observe(event(obj, "T2", AccessKind.READ))   # RdSh(1)
    runtime.observe(event(obj, "T3", AccessKind.WRITE))  # WrEx(T3)
    runtime.observe(event(obj, "T1", AccessKind.READ))   # RdEx(T1)
    record = runtime.observe(event(obj, "T2", AccessKind.READ))  # RdSh(2)
    assert record.kind is TransitionKind.UPGRADING_RD_SH
    assert runtime.state_of(obj.oid).counter == 2


def test_distinct_objects_have_independent_states():
    runtime = OctetRuntime(live_threads=lambda: ["T1", "T2"])
    heap = Heap()
    a, b = heap.alloc("a"), heap.alloc("b")
    runtime.observe(event(a, "T1", AccessKind.WRITE))
    runtime.observe(event(b, "T2", AccessKind.WRITE))
    assert runtime.state_of(a.oid).owner == "T1"
    assert runtime.state_of(b.oid).owner == "T2"
    assert runtime.stats.conflicting == 0


def test_atomic_operation_accounting():
    """Every non-fast-path state change costs at least one atomic op
    (the intermediate-state claim or the counter increment)."""
    runtime = OctetRuntime(live_threads=lambda: ["T1", "T2"])
    obj = Heap().alloc("o")
    runtime.observe(event(obj, "T1", AccessKind.READ))    # initial: free
    assert runtime.stats.atomic_operations == 0
    runtime.observe(event(obj, "T1", AccessKind.WRITE))   # upgrade WrEx
    assert runtime.stats.atomic_operations == 1
    runtime.observe(event(obj, "T2", AccessKind.WRITE))   # conflicting
    assert runtime.stats.atomic_operations >= 2
