"""Pytest configuration for the DoubleChecker reproduction tests."""

import pytest

from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler


@pytest.fixture
def rr():
    """A fresh round-robin scheduler."""
    return RoundRobinScheduler()


@pytest.fixture
def random_scheduler():
    """A factory for seeded random schedulers."""

    def make(seed: int = 0, switch_prob: float = 0.5) -> RandomScheduler:
        return RandomScheduler(seed=seed, switch_prob=switch_prob)

    return make
