"""Every shipped example runs cleanly and prints what it promises."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXPECTATIONS = {
    "quickstart.py": ["ATOMICITY VIOLATIONS", "increment"],
    "bank_accounts.py": ["buggy bank", "transfer", "fixed bank"],
    "multi_run_workflow.py": ["first runs", "second run", "violations"],
    "iterative_refinement_demo.py": ["converged: True", "non-atomic methods"],
    "record_and_replay.py": ["recorded", "Velodrome (replayed)", "Offline checker"],
    "checker_shootout.py": ["Checker shootout", "DoubleChecker single-run"],
}


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )


def test_every_example_has_expectations():
    present = sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )
    assert present == sorted(EXPECTATIONS)


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs_and_prints(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    for needle in EXPECTATIONS[name]:
        assert needle in result.stdout, (name, needle, result.stdout[-500:])


def test_shootout_rejects_unknown_benchmark():
    result = run_example("checker_shootout.py", "not-a-benchmark")
    assert result.returncode != 0
    assert "unknown benchmark" in result.stderr
