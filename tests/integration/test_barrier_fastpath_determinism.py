"""The fused barrier fast path is a pure optimization.

``DOUBLECHECKER_BARRIER_FASTPATH=0`` routes every access through the
reference pipeline — ``classify`` for every barrier, the two-stage
ICD+Octet dispatch — while the default fuses same-state detection,
counter batching, and logging into one closure.  Everything observable
must be identical between the two arms:

* the stream of transition records delivered to Octet listeners
  (same-state transitions never notify, in either arm);
* the IDG (edge endpoints, kinds, and creation order);
* every transaction's read/write log, entry for entry;
* the barrier/fast-path counters and the reported violations;
* end-to-end: Table 2, Table 3, and Figure 7 outputs, byte for byte
  (Figure 7 modulo its measured wall-clock columns, which are not
  deterministic between any two runs).

The inline fast-path predicate is duplicated in ``OctetRuntime.observe``
and ICD's fused barrier for speed; a property test pins both (via
``is_same_state``) against ``classify``.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.core.reports import ViolationSummary
from repro.core.rwlog import AccessEntry
from repro.harness import runner, table2, table3
from repro.octet.runtime import FASTPATH_ENV, OctetListener
from repro.octet.states import rd_ex, rd_sh, wr_ex
from repro.octet.transitions import TransitionKind, classify, is_same_state
from repro.runtime.events import AccessKind
from repro.runtime.executor import Executor
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification

from tests.integration.test_soundness_properties import (
    materialize,
    program_strategy,
)


# ----------------------------------------------------------------------
# the fast-path predicate vs Table 1
# ----------------------------------------------------------------------
state_strategy = st.one_of(
    st.none(),
    st.builds(wr_ex, st.sampled_from(["T0", "T1", "T2"])),
    st.builds(rd_ex, st.sampled_from(["T0", "T1", "T2"])),
    st.builds(rd_sh, st.integers(1, 5)),
)


@given(
    state_strategy,
    st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
    st.sampled_from(["T0", "T1", "T2"]),
    st.integers(0, 5),
)
@settings(max_examples=300, deadline=None)
def test_is_same_state_matches_classify(state, access, thread, rdsh_counter):
    classified = classify(state, access, thread, rdsh_counter, 99)
    assert is_same_state(state, access, thread, rdsh_counter) == (
        classified.kind is TransitionKind.SAME_STATE
    )


# ----------------------------------------------------------------------
# random schedules: every observable identical across the two arms
# ----------------------------------------------------------------------
class TransitionLog(OctetListener):
    """Records every listener-visible transition, fully serialized."""

    def __init__(self):
        self.records = []

    def _add(self, hook, record):
        event = record.event
        self.records.append(
            (
                hook,
                record.kind.value,
                event.seq,
                event.obj.oid,
                event.fieldname,
                event.thread_name,
                repr(record.old_state),
                repr(record.new_state),
                record.prior_owner,
                record.rdsh_counter,
            )
        )

    def on_conflicting(self, record):
        self._add("conflicting", record)

    def on_upgrading_rd_sh(self, record):
        self._add("upgrading_rd_sh", record)

    def on_upgrading_wr_ex(self, record):
        self._add("upgrading_wr_ex", record)

    def on_fence(self, record):
        self._add("fence", record)

    def on_initial(self, record):
        self._add("initial", record)


def _dump_logs(icd):
    out = {}
    for tx in icd.tx_manager.all_transactions:
        if tx.log is None:
            continue
        entries = []
        for entry in tx.log.entries:
            if isinstance(entry, AccessEntry):
                entries.append(
                    ("a", entry.kind.value, entry.oid, entry.fieldname,
                     entry.seq, entry.site)
                )
            else:
                entries.append(
                    ("m", entry.edge_order, entry.is_source, entry.seq)
                )
        out[tx.tx_id] = entries
    return out


def _dump_edges(icd):
    return sorted(
        (edge.src.tx_id, edge.dst.tx_id, edge.kind, edge.order,
         edge.src_log_index, edge.dst_log_index)
        for tx in icd.tx_manager.all_transactions
        for edge in tx.out_edges
    )


def _run_arm(fastpath, method_specs, thread_scripts, seed):
    saved = os.environ.get(FASTPATH_ENV)
    os.environ[FASTPATH_ENV] = "1" if fastpath else "0"
    try:
        program = materialize(method_specs, thread_scripts)
        spec = AtomicitySpecification.initial(program)
        pcd = PCD()
        violations = ViolationSummary()
        icd = ICD(
            spec,
            on_scc=lambda comp: violations.extend(pcd.process(comp)),
            gc_interval=None,
        )
        transitions = TransitionLog()
        icd.octet.add_listener(transitions)
        # single listener => the executor dispatches the fused barrier
        Executor(
            program, RandomScheduler(seed=seed, switch_prob=0.7), [icd]
        ).run()
        octet_stats = icd.octet.stats
        return {
            "transitions": transitions.records,
            "edges": _dump_edges(icd),
            "logs": _dump_logs(icd),
            "barriers": octet_stats.barriers,
            "fast_path": octet_stats.fast_path,
            "fused": octet_stats.fast_path_fused,
            "idg_edges": icd.stats.idg_edges,
            "log_entries": icd.stats.log_entries,
            "log_marks": icd.stats.log_marks,
            "elision": (icd._elision.stats.logged, icd._elision.stats.elided),
            "violations": [
                (r.blamed_method, r.blamed_tx_id, r.thread_name,
                 r.cycle_methods, r.cycle_tx_ids, r.detector)
                for r in violations.records
            ],
        }
    finally:
        if saved is None:
            os.environ.pop(FASTPATH_ENV, None)
        else:
            os.environ[FASTPATH_ENV] = saved


@given(program_strategy)
@settings(max_examples=50, deadline=None)
def test_fastpath_arms_identical_on_random_schedules(case):
    method_specs, thread_scripts, seed = case
    fused = _run_arm(True, method_specs, thread_scripts, seed)
    reference = _run_arm(False, method_specs, thread_scripts, seed)

    assert reference["fused"] == 0
    assert fused["fused"] <= fused["fast_path"]
    for key in fused:
        if key == "fused":
            continue
        assert fused[key] == reference[key], key


# ----------------------------------------------------------------------
# end-to-end: the experiment tables, byte for byte
# ----------------------------------------------------------------------
TABLE2_NAMES = ["hedc", "elevator"]
TABLE3_NAMES = ["hedc", "elevator"]
FIGURE7_NAMES = ["hedc"]


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    """Fresh final-spec cache per arm so neither arm reuses the other's
    refinement results (the comparison must exercise both pipelines
    end to end)."""

    def activate(arm):
        cache = tmp_path / arm
        cache.mkdir()
        monkeypatch.setattr(runner, "CACHE_DIR", str(cache))
        runner._FINAL_SPEC_MEMO.clear()

    yield activate
    runner._FINAL_SPEC_MEMO.clear()


def _both_arms(monkeypatch, isolated_cache, produce):
    outputs = []
    for arm, value in (("fused", "1"), ("reference", "0")):
        isolated_cache(arm)
        monkeypatch.setenv(FASTPATH_ENV, value)
        outputs.append(produce())
    return outputs


def test_table2_bytes_identical_across_arms(monkeypatch, isolated_cache):
    fused, reference = _both_arms(
        monkeypatch,
        isolated_cache,
        lambda: table2.generate(
            TABLE2_NAMES, trials_per_step=2, seed_base=0
        ).render(),
    )
    assert fused == reference


def test_table3_bytes_identical_across_arms(monkeypatch, isolated_cache):
    fused, reference = _both_arms(
        monkeypatch,
        isolated_cache,
        lambda: table3.generate(
            TABLE3_NAMES, trials=1, first_trials=1, seed_base=40_000
        ).render(),
    )
    assert fused == reference


def test_figure7_bytes_identical_across_arms(monkeypatch, isolated_cache):
    from repro.harness import figure7

    def produce():
        result = figure7.generate(
            FIGURE7_NAMES, trials=1, first_trials=1, seed_base=50_000
        )
        # the meas* columns are wall-clock ratios — not deterministic
        # between *any* two runs; everything modelled must match
        for row in result.rows:
            row.measured = {}
        return result.render()

    fused, reference = _both_arms(monkeypatch, isolated_cache, produce)
    assert fused == reference
