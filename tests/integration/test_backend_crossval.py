"""Backend cross-validation goldens over the full workload catalog.

Runs every catalog workload (seed 0) under all three online backends —
single-run ICD+PCD, Velodrome, and the vector-clock checker — plus the
vc backend with synchronization edges enabled and the offline checker
over a recorded trace of the same schedule, and pins the agreement
contract between the arms:

* boolean verdicts agree everywhere (and match a committed golden);
* vc's blamed methods are a subset of Velodrome's, with exact equality
  on the workloads where the cycles are all data-conflict 2-cycles;
* the one *designed* divergence — release-acquire-only cycles, which
  Velodrome reports and the no-sync-edges arms do not — is asserted on
  a purpose-built program, not ignored;
* replaying a recorded trace through the vc checker reproduces the
  live run verdict-for-verdict.
"""

import pytest

from repro.harness import runner
from repro.offline.checker import OfflineChecker
from repro.runtime.ops import Acquire, Compute, Invoke, Read, Release, Write
from repro.runtime.program import Program
from repro.spec.specification import AtomicitySpecification
from repro.trace.recorder import record_execution
from repro.trace.replay import replay_trace
from repro.vc.checker import VcChecker
from repro.velodrome.checker import VelodromeChecker
from repro.workloads import all_names, build

SEED = 0

#: golden: catalog workloads where every arm reports a violation at seed 0
VIOLATING = {
    "eclipse6",
    "lusearch6",
    "xalan6",
    "avrora9",
    "xalan9",
    "elevator",
}

#: golden: workloads whose vc blame set equals Velodrome's exactly
#: (every cycle there is a data-conflict 2-cycle, so the closing edge's
#: destination — vc's blame rule — is also Velodrome's pick)
BLAME_EQUAL = {"lusearch6", "xalan6", "elevator"}


@pytest.fixture(scope="module")
def matrix():
    """name -> dict of per-arm results over the whole catalog."""
    out = {}
    for name in all_names():
        spec = runner.initial_spec(name)
        icd = runner.run_single(name, spec, SEED)
        velodrome = runner.run_velodrome(name, spec, SEED)
        vc = runner.run_vc(name, spec, SEED)
        vc_sync = runner.run_vc(name, spec, SEED, sync_edges=True)
        trace = record_execution(build(name), runner.make_scheduler(SEED))
        offline = OfflineChecker(spec).check(trace)
        out[name] = {
            "icd": icd,
            "velodrome": velodrome,
            "vc": vc,
            "vc_sync": vc_sync,
            "offline": offline,
        }
    return out


@pytest.mark.parametrize("name", all_names())
def test_boolean_verdicts_agree(matrix, name):
    """All five arms return the same verdict, matching the golden."""
    arms = matrix[name]
    expected = name in VIOLATING
    assert bool(arms["icd"].violations) == expected
    assert bool(arms["velodrome"].violations) == expected
    assert bool(arms["vc"].violations) == expected
    assert bool(arms["vc_sync"].violations) == expected
    assert bool(arms["offline"].violations) == expected


@pytest.mark.parametrize("name", all_names())
def test_vc_blame_is_subset_of_velodrome(matrix, name):
    arms = matrix[name]
    assert arms["vc"].blamed_methods <= arms["velodrome"].blamed_methods


@pytest.mark.parametrize("name", sorted(BLAME_EQUAL))
def test_vc_blame_equals_velodrome_on_two_cycles(matrix, name):
    arms = matrix[name]
    assert arms["vc"].blamed_methods == arms["velodrome"].blamed_methods
    assert arms["vc"].blamed_methods  # golden set is non-trivial


@pytest.mark.parametrize("name", all_names())
def test_vc_sync_builds_velodrome_graph(matrix, name):
    """With sync edges, the vc arm adds the same deduplicated cross
    edges Velodrome does (cycle checks count exactly those)."""
    arms = matrix[name]
    assert (
        arms["vc_sync"].stats.cycle_checks
        == arms["velodrome"].stats.cycle_checks
    )


# ----------------------------------------------------------------------
# the designed divergence: release-acquire-only cycles
# ----------------------------------------------------------------------
def _sync_only_program():
    """Two atomic methods whose only interaction is a shared lock each
    takes twice with a gap: release-acquire edges close a cycle between
    overlapping transactions, but no data conflict exists (the paper's
    Section 6 false-positive shape)."""
    program = Program("synconly")
    lock = program.add_global_object("lock")
    mine = program.add_global_objects("mine", 2)

    def double_critical(ctx, lane):
        yield Acquire(lock)
        value = yield Read(mine[lane], "x")
        yield Write(mine[lane], "x", (value or 0) + 1)
        yield Release(lock)
        yield Compute(2)
        yield Acquire(lock)
        value = yield Read(mine[lane], "y")
        yield Write(mine[lane], "y", (value or 0) + 1)
        yield Release(lock)

    def worker(ctx, lane):
        for _ in range(6):
            yield Invoke("double_critical", (lane,))

    program.method(double_critical, name="double_critical")
    program.method(worker, name="worker")
    program.mark_entry("worker")
    program.add_thread("A", "worker", (0,))
    program.add_thread("B", "worker", (1,))
    return program


class TestSyncEdgeDivergence:
    """The only allowed disagreement, asserted in both directions."""

    def _run(self, checker_factory):
        program = _sync_only_program()
        spec = AtomicitySpecification.initial(_sync_only_program())
        checker = checker_factory(spec)
        return checker.run(program, runner.make_scheduler(13))

    def test_velodrome_reports_the_sync_cycle(self):
        result = self._run(VelodromeChecker)
        assert "double_critical" in result.blamed_methods

    def test_vc_default_skips_it_deliberately(self):
        result = self._run(VcChecker)
        assert not result.violations
        assert result.stats.sync_accesses_skipped > 0

    def test_vc_with_sync_edges_reports_it(self):
        result = self._run(lambda spec: VcChecker(spec, sync_edges=True))
        assert "double_critical" in result.blamed_methods


# ----------------------------------------------------------------------
# replay-vs-live identity for the vc backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["hedc", "lusearch6", "xalan6"])
def test_vc_replay_equals_live(matrix, name):
    """Replaying a recorded trace of the same schedule through a fresh
    VcChecker reproduces the live run exactly: verdicts, blame, and
    the deterministic graph/clock counters."""
    live = matrix[name]["vc"]
    spec = runner.initial_spec(name)
    trace = record_execution(build(name), runner.make_scheduler(SEED))

    replayed = VcChecker(spec)
    replay_trace(trace, [replayed])

    assert replayed.violations.blamed_methods() == live.blamed_methods
    assert len(replayed.violations.records) == len(live.violations.records)
    assert replayed.stats.edges == live.stats.edges
    assert replayed.stats.cycle_checks == live.stats.cycle_checks
    assert replayed.stats.clock_joins == live.stats.clock_joins
    assert replayed.stats.cycles_found == live.stats.cycles_found
