"""Telemetry determinism across the parallel harness.

Counters are derived from the analyzed execution, never from wall-clock
time, and :meth:`CellPool.starmap` merges per-cell snapshots in
submission order — so a serial run and a ``--jobs N`` run of the same
cells must produce *identical* merged counters and gauges (the PR's
acceptance criterion).  Histograms and span events carry wall-clock
durations and are exempt.
"""

import pytest

from repro.harness import runner, table3
from repro.harness.parallel import CellPool
from repro.obs.registry import (
    MetricsRegistry,
    MODE_COUNTERS,
    MODE_FULL,
    recorder,
    use_registry,
)

WORKLOAD = "hedc"


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


def _cells(spec):
    return [
        ("velodrome", WORKLOAD, spec, seed) for seed in range(3)
    ] + [
        ("single", WORKLOAD, spec, seed) for seed in range(3)
    ] + [
        ("first", WORKLOAD, spec, 7),
        ("baseline", WORKLOAD, None, 0),
    ]


def _run_cells(jobs, mode=MODE_COUNTERS):
    registry = MetricsRegistry(mode)
    previous = use_registry(registry)
    try:
        with CellPool(jobs) as pool:
            results = pool.starmap(runner.run_cell, _cells(spec_for_test()))
    finally:
        use_registry(previous)
    return results, registry.snapshot()


def spec_for_test():
    return runner.initial_spec(WORKLOAD)


def test_serial_and_parallel_merged_counters_identical():
    serial_results, serial = _run_cells(jobs=1)
    parallel_results, parallel = _run_cells(jobs=2)
    assert serial["counters"] == parallel["counters"]
    assert serial["gauges"] == parallel["gauges"]
    assert serial["counters"], "expected a non-empty merged snapshot"
    # the telemetry wrapper must not change the cell results either
    assert len(serial_results) == len(parallel_results)
    for s, p in zip(serial_results[:3], parallel_results[:3]):
        assert s.blamed_methods == p.blamed_methods


def test_full_mode_counters_still_deterministic():
    _, serial = _run_cells(jobs=1, mode=MODE_FULL)
    _, parallel = _run_cells(jobs=2, mode=MODE_FULL)
    assert serial["counters"] == parallel["counters"]
    # events exist in both but carry wall-clock data (not compared)
    assert serial["events"] and parallel["events"]


def test_experiment_generation_deterministic_under_obs():
    """A whole experiment (refinement included) merges identically."""

    def generate(jobs):
        runner._FINAL_SPEC_MEMO.clear()
        runner.clear_caches()
        registry = MetricsRegistry(MODE_COUNTERS)
        previous = use_registry(registry)
        try:
            with CellPool(jobs) as pool:
                result = table3.generate([WORKLOAD], pool=pool)
        finally:
            use_registry(previous)
        return result.render(), registry.snapshot()

    render_serial, serial = generate(jobs=1)
    render_parallel, parallel = generate(jobs=2)
    assert render_serial == render_parallel
    assert serial["counters"] == parallel["counters"]
    assert serial["gauges"] == parallel["gauges"]


def test_disabled_mode_parallel_path_unchanged():
    use_registry(None)
    assert recorder().enabled is False
    with CellPool(2) as pool:
        results = pool.starmap(
            runner.run_cell, [("baseline", WORKLOAD, None, 0)] * 2
        )
    assert all(r.steps > 0 for r in results)
