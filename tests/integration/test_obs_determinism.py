"""Telemetry determinism across the parallel and sharded harnesses.

Counters are derived from the analyzed execution, never from wall-clock
time, and :meth:`CellPool.starmap` merges per-cell snapshots in
submission order — so a serial run and a ``--jobs N`` run of the same
cells must produce *identical* merged counters and gauges (the PR's
acceptance criterion).  Histograms and span events carry wall-clock
durations and are exempt.

The sharded pipeline adds transport-layer telemetry (``shard.*``
counters such as chunk/byte totals, plus coordinator-side
``phase.shard.*`` span counters) that legitimately depends on the
shard count — those namespaces are excluded, and *everything else*
must still be byte-identical across serial, ``--shards {2,4}``, and
``--jobs 2`` arms.  A full-mode sharded run must also merge into one
schema-valid trace timeline: a single trace id, labeled process
tracks for the coordinator and every shard, and paired cross-process
flow arrows.
"""

import pytest

from repro.harness import runner, table3
from repro.harness.parallel import CellPool
from repro.obs.analyze import validate_trace
from repro.obs.export import chrome_trace_document
from repro.obs.registry import (
    MetricsRegistry,
    MODE_COUNTERS,
    MODE_FULL,
    recorder,
    use_registry,
)
from repro.shard import SHARDS_ENV, resolve_analysis_shards

WORKLOAD = "hedc"

#: telemetry namespaces that describe the sharded *transport* rather
#: than the analyzed execution; they only exist (and legitimately
#: differ) when the pipeline is partitioned
SHARD_ONLY_PREFIXES = ("shard.", "phase.shard.")


def _portable(mapping):
    return {
        name: value
        for name, value in mapping.items()
        if not name.startswith(SHARD_ONLY_PREFIXES)
    }


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


def _cells(spec):
    return [
        ("velodrome", WORKLOAD, spec, seed) for seed in range(3)
    ] + [
        ("single", WORKLOAD, spec, seed) for seed in range(3)
    ] + [
        ("first", WORKLOAD, spec, 7),
        ("baseline", WORKLOAD, None, 0),
    ]


def _run_cells(jobs, mode=MODE_COUNTERS):
    registry = MetricsRegistry(mode)
    previous = use_registry(registry)
    try:
        with CellPool(jobs) as pool:
            results = pool.starmap(runner.run_cell, _cells(spec_for_test()))
    finally:
        use_registry(previous)
    return results, registry.snapshot()


def spec_for_test():
    return runner.initial_spec(WORKLOAD)


def test_serial_and_parallel_merged_counters_identical():
    serial_results, serial = _run_cells(jobs=1)
    parallel_results, parallel = _run_cells(jobs=2)
    assert serial["counters"] == parallel["counters"]
    assert serial["gauges"] == parallel["gauges"]
    assert serial["counters"], "expected a non-empty merged snapshot"
    # the telemetry wrapper must not change the cell results either
    assert len(serial_results) == len(parallel_results)
    for s, p in zip(serial_results[:3], parallel_results[:3]):
        assert s.blamed_methods == p.blamed_methods


def test_full_mode_counters_still_deterministic():
    _, serial = _run_cells(jobs=1, mode=MODE_FULL)
    _, parallel = _run_cells(jobs=2, mode=MODE_FULL)
    assert serial["counters"] == parallel["counters"]
    # events exist in both but carry wall-clock data (not compared)
    assert serial["events"] and parallel["events"]


def test_experiment_generation_deterministic_under_obs():
    """A whole experiment (refinement included) merges identically."""

    def generate(jobs):
        runner._FINAL_SPEC_MEMO.clear()
        runner.clear_caches()
        registry = MetricsRegistry(MODE_COUNTERS)
        previous = use_registry(registry)
        try:
            with CellPool(jobs) as pool:
                result = table3.generate([WORKLOAD], pool=pool)
        finally:
            use_registry(previous)
        return result.render(), registry.snapshot()

    render_serial, serial = generate(jobs=1)
    render_parallel, parallel = generate(jobs=2)
    assert render_serial == render_parallel
    assert serial["counters"] == parallel["counters"]
    assert serial["gauges"] == parallel["gauges"]


def _run_cells_sharded(monkeypatch, shards, mode=MODE_COUNTERS):
    if shards is None:
        monkeypatch.delenv(SHARDS_ENV, raising=False)
    else:
        monkeypatch.setenv(SHARDS_ENV, str(shards))
    try:
        return _run_cells(jobs=1, mode=mode)
    finally:
        monkeypatch.delenv(SHARDS_ENV, raising=False)


def test_counters_identical_serial_vs_sharded_vs_jobs(monkeypatch):
    """The acceptance criterion: one deterministic counter set no
    matter how the work is partitioned — serial, sharded analysis
    (``--shards {2,4}``), or parallel cells (``--jobs 2``) — once the
    shard-transport namespaces are excluded."""
    _, serial = _run_cells_sharded(monkeypatch, None)
    _, jobs2 = _run_cells(jobs=2)
    _, shard2 = _run_cells_sharded(monkeypatch, 2)
    _, shard4 = _run_cells_sharded(monkeypatch, 4)

    base_counters = _portable(serial["counters"])
    base_gauges = _portable(serial["gauges"])
    assert base_counters, "expected a non-empty merged snapshot"
    for name, arm in (("jobs2", jobs2), ("shard2", shard2),
                      ("shard4", shard4)):
        assert _portable(arm["counters"]) == base_counters, name
        assert _portable(arm["gauges"]) == base_gauges, name

    # the exclusion is not vacuous: sharded arms do record transport
    # counters, the serial arm records none
    assert any(k.startswith("shard.") for k in shard2["counters"])
    assert not any(k.startswith("shard.") for k in serial["counters"])
    # and the *deterministic* transport counters agree between shard
    # counts where the merge reconciles them to serial bytes
    for key in ("shard.stream_records", "shard.stream_defs"):
        assert shard2["counters"][key] == shard4["counters"][key]


def test_sharded_full_mode_merges_single_timeline(monkeypatch):
    """``--shards N --obs full`` must produce ONE schema-valid trace:
    a single trace id, labeled tracks for coordinator + analyzer + log
    shards, spans from every process, and paired flow arrows."""
    monkeypatch.setenv(SHARDS_ENV, "2")
    registry = MetricsRegistry(MODE_FULL)
    previous = use_registry(registry)
    try:
        runner.run_cell("single", WORKLOAD, spec_for_test(), 0)
    finally:
        use_registry(previous)
    snapshot = registry.snapshot()
    doc = chrome_trace_document(snapshot)
    assert validate_trace(doc) == []

    assert doc["otherData"]["trace_id"] == snapshot["trace_id"]
    labels = set(snapshot["labels"].values())
    assert "coordinator" in labels
    # under DOUBLECHECKER_ANALYSIS_SHARDS > 1 the analyzer role is the
    # exchange owner plus per-partition worker tracks
    partitioned = resolve_analysis_shards(None) > 1
    if partitioned:
        assert "shard-exchange" in labels
        assert "shard-analysis-0" in labels
    else:
        assert "shard-analyzer" in labels
    assert "shard-log-0" in labels

    events = doc["traceEvents"]
    span_pids = {e["pid"] for e in events if e["ph"] == "X"}
    label_pids = set(snapshot["labels"])
    # every labeled process contributed spans to the one timeline
    assert label_pids <= span_pids
    assert len(span_pids) >= 3

    # flow arrows pair up: each (name, id) start has exactly one finish
    starts = {(e["name"], e["id"]) for e in events if e["ph"] == "s"}
    finishes = {(e["name"], e["id"]) for e in events if e["ph"] == "f"}
    assert starts, "expected cross-process flow arrows"
    assert starts == finishes
    names = {name for name, _id in starts}
    assert "shard.chunk" in names
    assert "shard.job" in names
    if partitioned:
        # partition workers forward their residue to the exchange owner
        assert "shard.xchunk" in names


def test_disabled_mode_parallel_path_unchanged():
    use_registry(None)
    assert recorder().enabled is False
    with CellPool(2) as pool:
        results = pool.starmap(
            runner.run_cell, [("baseline", WORKLOAD, None, 0)] * 2
        )
    assert all(r.steps > 0 for r in results)
