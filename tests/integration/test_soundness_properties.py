"""Property-based soundness/precision tests on random programs.

These are executable versions of the paper's key claims:

* **Section 3.2.5 (ICD soundness):** for every precise dependence
  cycle, ICD detects an SCC whose transactions are a superset of the
  cycle's transactions.
* **Single-run mode is sound and precise:** on the same execution it
  reports a violation iff an independent whole-trace oracle finds a
  precise cycle — and agrees with our Velodrome implementation.

The oracle is deliberately independent of the production code paths:
it records the raw access trace and applies Figure 5's rules offline
over the *entire* execution in true order, then runs an off-the-shelf
SCC computation (networkx) over cross-thread plus program-order edges.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st
import networkx as nx

from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.core.reports import ViolationSummary
from repro.runtime.events import AccessKind
from repro.runtime.executor import Executor
from repro.runtime.listeners import ExecutionListener
from repro.runtime.ops import Acquire, Compute, Invoke, Read, Release, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification
from repro.vc.checker import VcChecker
from repro.velodrome.checker import VelodromeChecker

# ----------------------------------------------------------------------
# random-program strategy
# ----------------------------------------------------------------------
# an op is (kind, object index, field index):
#   0 = read, 1 = write, 2 = locked read+write
op_strategy = st.tuples(
    st.integers(0, 2), st.integers(0, 1), st.integers(0, 1)
)
method_strategy = st.lists(op_strategy, min_size=1, max_size=4)
program_strategy = st.tuples(
    st.lists(method_strategy, min_size=1, max_size=4),   # method bodies
    st.lists(                                            # per-thread call scripts
        st.lists(st.integers(0, 3), min_size=1, max_size=6),
        min_size=2,
        max_size=3,
    ),
    st.integers(0, 10_000),                              # scheduler seed
)


def materialize(method_specs, thread_scripts):
    program = Program("random")
    objects = program.add_global_objects("objs", 2)

    for index, ops in enumerate(method_specs):
        def make_body(ops=ops):
            def body(ctx):
                for kind, obj_index, field_index in ops:
                    obj = objects[obj_index]
                    fieldname = f"f{field_index}"
                    if kind == 0:
                        yield Read(obj, fieldname)
                    elif kind == 1:
                        yield Write(obj, fieldname, 1)
                    else:
                        yield Acquire(obj)
                        value = yield Read(obj, fieldname)
                        yield Write(obj, fieldname, (value or 0) + 1)
                        yield Release(obj)

            return body

        program.method(make_body(), name=f"m{index}")

    method_count = len(method_specs)
    for tid, script in enumerate(thread_scripts):
        def make_worker(script=script):
            def worker(ctx):
                for call in script:
                    yield Invoke(f"m{call % method_count}")

            return worker

        name = f"worker{tid}"
        program.method(make_worker(), name=name)
        program.mark_entry(name)
        program.add_thread(f"T{tid}", name)
    return program


# ----------------------------------------------------------------------
# the independent oracle
# ----------------------------------------------------------------------
class TraceRecorder(ExecutionListener):
    """Records (tx, address, kind) in execution order.

    Registered *after* ICD in the pipeline so it can read ICD's
    transaction assignment for each access (the same assignment PCD
    analyzes), while remaining independent of ICD's graph machinery.
    """

    def __init__(self, icd: ICD) -> None:
        self.icd = icd
        self.trace = []

    def on_access(self, event):
        tx = self.icd.tx_manager.current_or_latest(event.thread_name)
        if tx is not None:
            self.trace.append((tx, event.address, event.kind))


def oracle_cyclic_sccs(trace):
    """Whole-trace Figure 5 + program order, SCCs via networkx."""
    graph = nx.DiGraph()
    last_write = {}
    last_reads = {}
    chains = {}
    for tx, address, kind in trace:
        graph.add_node(tx.tx_id)
        prev = chains.get(tx.thread_name)
        if prev is not None and prev is not tx:
            graph.add_edge(prev.tx_id, tx.tx_id)
        chains[tx.thread_name] = tx

        writer = last_write.get(address)
        if writer is not None and writer.thread_name != tx.thread_name:
            graph.add_edge(writer.tx_id, tx.tx_id)
        if kind is AccessKind.READ:
            last_reads.setdefault(address, {})[tx.thread_name] = tx
        else:
            for thread_name, reader in last_reads.get(address, {}).items():
                if thread_name != tx.thread_name:
                    graph.add_edge(reader.tx_id, tx.tx_id)
            last_reads[address] = {}
            last_write[address] = tx
    return [set(scc) for scc in nx.strongly_connected_components(graph) if len(scc) > 1]


def run_all(method_specs, thread_scripts, seed):
    """Run DC single-run + oracle on one schedule; Velodrome on the same."""
    program = materialize(method_specs, thread_scripts)
    spec = AtomicitySpecification.initial(program)

    pcd = PCD()
    violations = ViolationSummary()
    components = []

    def on_scc(component):
        components.append({tx.tx_id for tx in component})
        violations.extend(pcd.process(component))

    icd = ICD(spec, on_scc=on_scc, gc_interval=None)
    recorder = TraceRecorder(icd)
    Executor(
        program, RandomScheduler(seed=seed, switch_prob=0.7), [icd, recorder]
    ).run()
    oracle = oracle_cyclic_sccs(recorder.trace)

    program_v = materialize(method_specs, thread_scripts)
    velodrome = VelodromeChecker(
        AtomicitySpecification.initial(program_v), gc_interval=None
    ).run(program_v, RandomScheduler(seed=seed, switch_prob=0.7))

    return violations, components, oracle, velodrome, pcd


@given(program_strategy)
@settings(max_examples=60, deadline=None)
def test_icd_sccs_are_supersets_of_precise_cycles(case):
    method_specs, thread_scripts, seed = case
    _, components, oracle, _, _ = run_all(method_specs, thread_scripts, seed)
    for cycle in oracle:
        assert any(
            cycle <= component for component in components
        ), f"precise cycle {cycle} not covered by any ICD SCC {components}"


#: regression examples for the PCD log-merge ordering bug: edge marks
#: created after the source transaction ended (or attributed by ICD to
#: a thread's *next* transaction) used to enter the merge heap at their
#: creation seq, letting later accesses overtake parked earlier ones
#: and deriving a phantom backwards dependence edge — a false positive
#: on a lock-protected read-modify-write program with no precise cycle
_MERGE_REGRESSION_1 = (
    [[(2, 0, 1), (0, 0, 0), (0, 0, 0), (0, 1, 0)]],
    [[0, 0, 0], [0, 0, 0], [0]],
    1050,
)
_MERGE_REGRESSION_2 = (
    [[(2, 0, 0), (0, 0, 0), (0, 0, 0), (0, 1, 0)]],
    [[0, 0, 0], [0, 0, 0], [0]],
    1050,
)


@given(program_strategy)
@example(_MERGE_REGRESSION_1)
@example(_MERGE_REGRESSION_2)
@settings(max_examples=60, deadline=None)
def test_single_run_sound_and_precise_vs_oracle(case):
    method_specs, thread_scripts, seed = case
    violations, _, oracle, _, _ = run_all(method_specs, thread_scripts, seed)
    assert bool(violations) == bool(oracle)


@given(program_strategy)
@example(_MERGE_REGRESSION_1)
@example(_MERGE_REGRESSION_2)
@settings(max_examples=60, deadline=None)
def test_single_run_agrees_with_velodrome(case):
    """Both sound+precise checkers agree with the oracle's verdict.

    Exact cycle *witnesses* can legitimately differ between the two
    checkers on the same schedule: each reports one cycle per closing
    edge (the first DFS path found), PCD computes conflict edges within
    an SCC's restricted access set (where a transitive ``W→...→R``
    chain may appear as one direct conflict edge), and blame compares
    checker-local edge-creation orders.  What must hold: the verdicts
    agree, every reported witness lies inside an oracle SCC, and DC's
    precise cycles lie inside the oracle's SCCs transaction-for-
    transaction (same transaction numbering).
    """
    method_specs, thread_scripts, seed = case
    violations, _, oracle, velodrome, _ = run_all(
        method_specs, thread_scripts, seed
    )
    assert bool(violations) == bool(oracle)
    assert bool(velodrome.violations) == bool(oracle)

    for record in violations.records:
        # each precise cycle sits inside one oracle SCC (same tx ids)
        assert any(
            set(record.cycle_tx_ids) <= scc for scc in oracle
        ), (record.cycle_tx_ids, oracle)

    # every oracle SCC is witnessed by at least one DC cycle
    for scc in oracle:
        assert any(
            set(record.cycle_tx_ids) <= scc for record in violations.records
        ), (scc, [r.cycle_tx_ids for r in violations.records])


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_vector_clock_agrees_with_oracle_and_velodrome(case):
    """The vc backend's two arms each track an existing referee: the
    default arm shares the oracle's design point (data-conflict edges
    only, no synchronization edges), and the ``sync_edges`` arm builds
    Velodrome's exact graph — so each must reproduce its referee's
    boolean verdict, and the sync arm must perform exactly Velodrome's
    per-edge cycle checks."""
    method_specs, thread_scripts, seed = case
    _, _, oracle, velodrome, _ = run_all(method_specs, thread_scripts, seed)

    def run_vc(sync_edges):
        program = materialize(method_specs, thread_scripts)
        checker = VcChecker(
            AtomicitySpecification.initial(program),
            sync_edges=sync_edges,
            gc_interval=None,
        )
        return checker.run(
            program, RandomScheduler(seed=seed, switch_prob=0.7)
        )

    vc = run_vc(False)
    vc_sync = run_vc(True)
    assert bool(vc.violations) == bool(oracle)
    assert bool(vc_sync.violations) == bool(velodrome.violations)
    assert vc_sync.stats.cycle_checks == velodrome.stats.cycle_checks


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_replay_never_falls_back(case):
    """PCD's topological merge must always be consistent (the edge
    anchors are sufficient; the seq tie-break never contradicts them)."""
    method_specs, thread_scripts, seed = case
    _, _, _, _, pcd = run_all(method_specs, thread_scripts, seed)
    assert pcd.stats.order_fallbacks == 0
