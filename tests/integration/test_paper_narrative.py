"""The paper's §3.2.3 example and other in-text scenarios as tests."""

import pytest

from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.octet.transitions import TransitionKind
from repro.runtime.executor import Executor
from repro.runtime.ops import Compute, Invoke, Read, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import ScriptedScheduler
from repro.spec.specification import AtomicitySpecification


def build_section_323_example():
    """Section 3.2.3's two-thread example:

        T1: wr o.f; rd p.q          T2: wr p.q; rd o.g; rd o.f

    Even if cycle detection ran at each cross-thread edge, no precise
    cycle exists until T2's final ``rd o.f`` executes — which takes the
    read barrier's *fast path* (T2 already owns o as RdEx), creating no
    new edge.  Deferring detection to transaction end guarantees the
    cycle is still found.
    """
    program = Program("sec323")
    o = program.add_global_object("o")
    p = program.add_global_object("p")

    def tx_a(ctx):
        yield Write(o, "f", 1)
        yield Compute(1)
        yield Read(p, "q")

    def tx_b(ctx):
        yield Write(p, "q", 2)
        yield Read(o, "g")
        yield Read(o, "f")     # fast path: closes the precise cycle

    for name, body in (("tx_a", tx_a), ("tx_b", tx_b)):
        program.method(body, name=name)

        def entry(ctx, m=name):
            yield Invoke(m)

        program.method(entry, name=f"run_{name}")
        program.mark_entry(f"run_{name}")
    program.add_thread("T1", "run_tx_a")
    program.add_thread("T2", "run_tx_b")
    return program, o, p


# interleaving: T1 wr o.f | T2 wr p.q, rd o.g | T1 rd p.q, end | T2 rd o.f, end
SCRIPT = (
    ["T1"] * 3    # start, invoke, wr o.f
    + ["T2"] * 4  # start, invoke, wr p.q, rd o.g
    + ["T1"] * 4  # compute, rd p.q, end tx_a, end
    + ["T2"] * 4  # rd o.f (fast path), end tx_b, end, -
)


@pytest.fixture(scope="module")
def run():
    program, o, p = build_section_323_example()
    spec = AtomicitySpecification.initial(program)
    assert spec.is_atomic("tx_a") and spec.is_atomic("tx_b")
    pcd = PCD()
    violations = []
    components = []

    def on_scc(component):
        components.append(component)
        violations.extend(pcd.process(component))

    icd = ICD(spec, on_scc=on_scc)
    Executor(program, ScriptedScheduler(SCRIPT), [icd]).run()
    return icd, components, violations


def test_final_read_takes_the_fast_path(run):
    icd, _, _ = run
    # T2's rd o.f hits RdEx(T2): at least one same-state read occurred
    assert icd.octet.stats.fast_path > 0


def test_cycle_found_despite_fast_path_close(run):
    """The precise cycle's closing access creates no Octet transition,
    yet end-of-transaction detection still reports the violation."""
    _, components, violations = run
    assert components, "ICD must detect the imprecise cycle"
    assert violations, "PCD must confirm the precise cycle"
    methods = {m for v in violations for m in v.cycle_methods}
    assert methods == {"tx_a", "tx_b"}


def test_detection_happened_at_transaction_end(run):
    icd, _, _ = run
    # with delayed detection, the number of SCC computations is bounded
    # by the number of transaction ends, not by the number of edges
    assert icd.stats.scc_computations <= icd.stats.cycle_detection_calls
