"""Sharded analysis is a pure reorganisation of the serial pipeline.

Partitioning the ``(oid, field)`` address space across worker
processes (:mod:`repro.shard`) must change *nothing* observable: the
coordinator replays the exact execution, the analysis shard runs the
real Octet+ICD, and the deterministic merge reassembles every log and
report in serial order.  Everything is compared byte for byte against
a serial run:

* the stream of Octet transition records delivered to listeners;
* every transaction's read/write log, entry for entry (access entries
  *and* edge marks, interleaved in serial seq order — the property the
  suffix-sliced column merge must preserve);
* the IDG edge list (endpoints, kinds, creation order, and the mark
  indices anchoring each edge into its endpoint logs);
* the reported violations, field for field;
* end-to-end: Table 2, Table 3, and Figure 7 outputs rendered under
  ``DOUBLECHECKER_SHARDS`` ∈ {1, 2, 4} plus one partitioned-analysis
  arm (``DOUBLECHECKER_ANALYSIS_SHARDS=2``), byte for byte (Figure 7
  modulo its measured wall-clock columns).

The random-schedule property additionally crosses the log-shard count
with ``analysis_shards`` ∈ {1, 2, 4}, so the partition workers, the
exchange owner's k-way merge, and its ``W_ADVANCE`` drain barriers are
all exercised against the serial oracle on every example.

The random-schedule property test drives the full multiprocess
pipeline (fork, int64 chunk streams, peer slice mesh, ordinal-ordered
PCD jobs) on hypothesis-generated programs, so shard-count-dependent
partitions, chunk boundaries, and job interleavings all vary across
examples.
"""

import pytest
from hypothesis import given, settings

from repro.core.doublechecker import DoubleChecker
from repro.core.pcd import PCD
from repro.core.reports import ViolationSummary
from repro.harness import runner, table2, table3
from repro.runtime.scheduler import RandomScheduler
from repro.shard import ANALYSIS_SHARDS_ENV, SHARDS_ENV
from repro.shard.coordinator import run_single_sharded
from repro.shard.snapshot import CaptureTransitionLog, dump_edges, dump_logs
from repro.spec.specification import AtomicitySpecification

from tests.integration.test_soundness_properties import (
    materialize,
    program_strategy,
)


def _violation_dump(violations):
    return [
        (r.blamed_method, r.blamed_tx_id, r.thread_name,
         r.cycle_methods, r.cycle_tx_ids, r.detector)
        for r in violations
    ]


def _serial_observables(method_specs, thread_scripts, seed):
    """The serial arm, instrumented exactly like the sharded capture."""
    program = materialize(method_specs, thread_scripts)
    checker = DoubleChecker(AtomicitySpecification.initial(program))
    violations = ViolationSummary()
    pcd = PCD(use_engine=checker.use_engine)
    icd = checker._make_icd(
        logging_enabled=True,
        on_scc=lambda comp: violations.extend(pcd.process(comp)),
    )
    transitions = CaptureTransitionLog()
    icd.octet.add_listener(transitions)
    checker._execute(
        program, RandomScheduler(seed=seed, switch_prob=0.7), icd
    )
    return {
        "transitions": transitions.records,
        "logs": dump_logs(icd),
        "edges": dump_edges(icd),
        "violations": _violation_dump(violations.records),
    }


def _sharded_observables(
    method_specs, thread_scripts, seed, shards, analysis_shards=1
):
    program = materialize(method_specs, thread_scripts)
    checker = DoubleChecker(AtomicitySpecification.initial(program))
    result, capture = run_single_sharded(
        checker,
        program,
        RandomScheduler(seed=seed, switch_prob=0.7),
        shards,
        analysis_shards=analysis_shards,
        capture=True,
    )
    return {
        "transitions": capture["transitions"],
        "logs": capture["logs"],
        "edges": capture["edges"],
        "violations": _violation_dump(result.violations.records),
    }


#: (shards, analysis_shards) pipeline topologies the property test
#: drives against the serial oracle: both log-shard mesh shapes with a
#: single analysis shard, plus the partitioned analysis plane with the
#: partition count below, equal to, and above the log-shard count
PIPELINE_ARMS = ((2, 1), (4, 1), (2, 2), (2, 4), (4, 4))


@given(program_strategy)
@settings(max_examples=15, deadline=None)
def test_sharded_arms_identical_on_random_schedules(case):
    method_specs, thread_scripts, seed = case
    serial = _serial_observables(method_specs, thread_scripts, seed)
    for shards, analysis_shards in PIPELINE_ARMS:
        sharded = _sharded_observables(
            method_specs, thread_scripts, seed, shards, analysis_shards
        )
        for key in ("transitions", "logs", "edges", "violations"):
            assert sharded[key] == serial[key], (
                f"shards={shards} analysis_shards={analysis_shards}: {key}"
            )


# ----------------------------------------------------------------------
# end-to-end: the experiment tables, byte for byte
# ----------------------------------------------------------------------
TABLE2_NAMES = ["hedc", "elevator"]
TABLE3_NAMES = ["hedc", "elevator"]
FIGURE7_NAMES = ["hedc"]

#: shards=1 is the degradation path (never forks); 2 and 4 exercise
#: both mesh topologies (single log shard vs peer slicing); "2a2"
#: additionally splits the analysis shard into two partition workers
#: plus the exchange owner (``DOUBLECHECKER_ANALYSIS_SHARDS=2``)
SHARD_ARMS = ("1", "2", "4", "2a2")

#: arm name -> (DOUBLECHECKER_SHARDS, DOUBLECHECKER_ANALYSIS_SHARDS)
ARM_TOPOLOGY = {"1": ("1", "1"), "2": ("2", "1"),
                "4": ("4", "1"), "2a2": ("2", "2")}


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    """Fresh final-spec cache per arm so no arm reuses another's
    refinement results (each shard count must run its own pipeline
    end to end)."""

    def activate(arm):
        cache = tmp_path / arm
        cache.mkdir()
        monkeypatch.setattr(runner, "CACHE_DIR", str(cache))
        runner._FINAL_SPEC_MEMO.clear()

    yield activate
    runner._FINAL_SPEC_MEMO.clear()


def _all_arms(monkeypatch, isolated_cache, produce):
    outputs = []
    for arm in SHARD_ARMS:
        isolated_cache(arm)
        shards, analysis = ARM_TOPOLOGY[arm]
        monkeypatch.setenv(SHARDS_ENV, shards)
        monkeypatch.setenv(ANALYSIS_SHARDS_ENV, analysis)
        outputs.append(produce())
    return outputs


def test_table2_bytes_identical_across_shard_counts(
    monkeypatch, isolated_cache
):
    one, two, four, split = _all_arms(
        monkeypatch,
        isolated_cache,
        lambda: table2.generate(
            TABLE2_NAMES, trials_per_step=2, seed_base=0
        ).render(),
    )
    assert two == one
    assert four == one
    assert split == one


def test_table3_bytes_identical_across_shard_counts(
    monkeypatch, isolated_cache
):
    one, two, four, split = _all_arms(
        monkeypatch,
        isolated_cache,
        lambda: table3.generate(
            TABLE3_NAMES, trials=1, first_trials=1, seed_base=40_000
        ).render(),
    )
    assert two == one
    assert four == one
    assert split == one


def test_figure7_bytes_identical_across_shard_counts(
    monkeypatch, isolated_cache
):
    from repro.harness import figure7

    def produce():
        result = figure7.generate(
            FIGURE7_NAMES, trials=1, first_trials=1, seed_base=50_000
        )
        # the meas* columns are wall-clock ratios — not deterministic
        # between *any* two runs; everything modelled must match
        for row in result.rows:
            row.measured = {}
        return result.render()

    one, two, four, split = _all_arms(monkeypatch, isolated_cache, produce)
    assert two == one
    assert four == one
    assert split == one
