"""Mixed program-order/dependence cycles (the overlap bug).

A transaction ``B`` that overlaps two transactions ``A1 → A2`` of
another thread — writing what ``A1`` reads before reading what ``A2``
writes — is non-serializable through a cycle that *includes an
intra-thread edge*: ``B → A1 → A2 → B``.  This shape regression-tests
PCD's program-order edges (an early version only tracked cross-thread
edges and missed it; Velodrome caught it, breaking the checkers'
agreement).
"""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.runtime.ops import Compute, Invoke, Read, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import ScriptedScheduler
from repro.spec.specification import AtomicitySpecification
from repro.velodrome.checker import VelodromeChecker


def build():
    program = Program("overlap")
    x = program.add_global_object("x")
    y = program.add_global_object("y")

    def a_entry(ctx):
        yield Invoke("a_read_x")
        yield Invoke("a_write_y")

    def a_read_x(ctx):
        yield Read(x, "f")

    def a_write_y(ctx):
        yield Write(y, "f", 1)

    def b_whole(ctx):
        yield Write(x, "f", 2)     # before A1 reads x: edge B -> A1
        yield Compute(1)
        yield Read(y, "f")         # after A2 writes y: edge A2 -> B

    def b_entry(ctx):
        yield Invoke("b_whole")

    for name, body in [
        ("a_entry", a_entry), ("a_read_x", a_read_x),
        ("a_write_y", a_write_y), ("b_whole", b_whole),
        ("b_entry", b_entry),
    ]:
        program.method(body, name=name)
    program.add_thread("A", "a_entry")
    program.add_thread("B", "b_entry")
    program.mark_entry("a_entry")
    program.mark_entry("b_entry")
    return program


# B starts, writes x; A runs completely (both transactions); B resumes
SCRIPT = ["B"] * 4 + ["A"] * 14 + ["B"] * 6


def test_doublechecker_finds_the_overlap_cycle():
    program = build()
    spec = AtomicitySpecification.initial(program)
    result = DoubleChecker(spec).run_single(program, ScriptedScheduler(SCRIPT))
    assert result.blamed_methods == {"b_whole"}
    cycle = result.violations.records[0]
    # the cycle spans both of A's transactions plus B
    assert set(cycle.cycle_methods) == {"a_read_x", "a_write_y", "b_whole"}


def test_agrees_with_velodrome_on_overlap():
    spec = AtomicitySpecification.initial(build())
    velodrome = VelodromeChecker(spec).run(build(), ScriptedScheduler(SCRIPT))
    double = DoubleChecker(spec).run_single(build(), ScriptedScheduler(SCRIPT))
    assert velodrome.blamed_methods == double.blamed_methods == {"b_whole"}


def test_no_cycle_when_b_does_not_overlap():
    """If B runs entirely before A, the same accesses are serializable."""
    serial = ["B"] * 10 + ["A"] * 14
    spec = AtomicitySpecification.initial(build())
    result = DoubleChecker(spec).run_single(build(), ScriptedScheduler(serial))
    assert result.blamed_methods == set()
