"""Memory-behaviour fidelity: the paper's out-of-memory stories.

Section 5.1 adjusts its methodology repeatedly around memory: PCD
exhausts memory on long-running transactions (raytracer, sunflow9);
single-run mode exhausts memory on large inputs; the PCD-only variant
exhausts it on four benchmarks.  These tests pin the mechanisms that
reproduce those behaviours.
"""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.errors import OutOfMemoryBudget
from repro.harness.runner import initial_spec, make_scheduler
from repro.workloads import build, get_spec


class TestLongTransactionHazard:
    def test_sunflow9_long_transaction_overwhelms_pcd(self):
        """With render_scene in the spec, its single transaction's log
        exceeds a budget that all normal components respect; with the
        paper's adjustment (exclude it), the same budget always holds."""
        from repro.spec.specification import AtomicitySpecification

        # adjusted spec (the paper's methodology): always clean
        for seed in range(4):
            checker = DoubleChecker(
                initial_spec("sunflow9"), pcd_memory_budget=2_000
            )
            checker.run_single(build("sunflow9"), make_scheduler(seed))

        # full spec: the hazard fires on some schedule
        oomed = False
        for seed in range(8):
            program = build("sunflow9")
            full_spec = AtomicitySpecification.initial(program)
            assert full_spec.is_atomic("render_scene")
            hazard = DoubleChecker(full_spec, pcd_memory_budget=2_000)
            try:
                hazard.run_single(program, make_scheduler(seed))
            except OutOfMemoryBudget as error:
                assert error.component == "PCD"
                oomed = True
                break
        assert oomed, "the sunflow9 hazard never fired"

    def test_long_transaction_log_dominates(self):
        from repro.core.icd import ICD
        from repro.runtime.executor import Executor
        from repro.spec.specification import AtomicitySpecification

        program = build("raytracer")
        spec = AtomicitySpecification.initial(program)
        icd = ICD(spec, gc_interval=None)
        Executor(program, make_scheduler(3), [icd]).run()
        logs = sorted(
            (len(tx.log) for tx in icd.tx_manager.all_transactions if tx.log),
            reverse=True,
        )
        # the render_scene transaction's log dwarfs the runner-up (the
        # duplicate-elision optimization caps it at one entry per
        # distinct field per edge-free window, so "dwarfs" is ~one
        # order of magnitude rather than the raw iteration count)
        assert logs[0] > 5 * logs[1]


class TestGcFootprint:
    def test_collection_bounds_peak_live_logs(self):
        spec = initial_spec("eclipse6")
        with_gc = DoubleChecker(spec, gc_interval=16).run_single(
            build("eclipse6"), make_scheduler(7)
        )
        without_gc = DoubleChecker(spec, gc_interval=None).run_single(
            build("eclipse6"), make_scheduler(7)
        )
        total = without_gc.icd_stats.log_entries + without_gc.icd_stats.log_marks
        assert with_gc.gc_stats.peak_live_log_entries < total
        assert with_gc.gc_stats.transactions_collected > 0

    def test_first_run_has_no_log_footprint(self):
        spec = initial_spec("eclipse6")
        first = DoubleChecker(spec).run_first(build("eclipse6"), make_scheduler(7))
        assert first.icd_stats.log_entries == 0
        assert first.icd_stats.live_log_entry_integral == 0

    def test_live_log_integral_orders_the_modes(self):
        """The GC-pressure integral: collected single-run << PCD-only."""
        spec = initial_spec("hsqldb6")
        single = DoubleChecker(spec, gc_interval=16).run_single(
            build("hsqldb6"), make_scheduler(9)
        )
        pcd_only = DoubleChecker(spec, gc_interval=None).run_pcd_only(
            build("hsqldb6"), make_scheduler(9)
        )
        assert (
            pcd_only.icd_stats.live_log_entry_integral
            > 2 * single.icd_stats.live_log_entry_integral
        )
