"""The future-work extension: site-selective unary instrumentation.

Section 5.3 closes with the observation that the first run's unary
information is "even coarser" than its method-level information — a
single boolean forcing the second run to instrument *all*
non-transactional accesses in most benchmarks — and names more precise
first→second-run communication as a promising direction.  The
extension implemented in :mod:`repro.core.static_info` records the
enclosing methods of in-cycle unary accesses; these tests verify it
reduces instrumentation without losing the violations those unary
accesses participate in.
"""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.runtime.ops import Compute, Invoke, Read, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification


def build():
    """One violating atomic method racing against *unary* accesses from
    `poker`, plus heavy unary traffic in an unrelated method `churner`
    that selective instrumentation should skip."""
    program = Program("selective")
    shared = program.add_global_object("shared")
    private = program.add_global_objects("private", 4)

    def rmw(ctx):
        value = yield Read(shared, "x")
        yield Compute(2)
        yield Write(shared, "x", (value or 0) + 1)

    def poker(ctx, tid):
        # unary accesses racing with rmw (these join cycles)
        for _ in range(15):
            value = yield Read(shared, "x")
            yield Write(shared, "x", (value or 0) + 1)
            yield Invoke("rmw")

    def churner(ctx, tid):
        # heavy unary traffic on private data (never in cycles)
        target = private[tid % len(private)]
        for i in range(60):
            value = yield Read(target, f"f{i % 3}")
            yield Write(target, f"f{i % 3}", (value or 0) + 1)

    def worker(ctx, tid):
        yield Invoke("poker", (tid,))
        yield Invoke("churner", (tid,))

    program.method(rmw, name="rmw")
    program.method(poker, name="poker")
    program.method(churner, name="churner")
    program.method(worker, name="worker")
    for name in ("poker", "churner", "worker"):
        program.mark_entry(name)
    for t in range(3):
        program.add_thread(f"T{t}", "worker", (t,))
    return program


def scheduler(seed):
    return RandomScheduler(seed=seed, switch_prob=0.7)


@pytest.fixture(scope="module")
def runs():
    spec = AtomicitySpecification.initial(build())
    checker = DoubleChecker(spec)
    info = None
    for trial in range(4):
        first = checker.run_first(
            build(), scheduler(trial), track_unary_sites=True
        )
        info = (
            first.static_info
            if info is None
            else info.union(first.static_info)
        )
    baseline = checker.run_second(build(), info, scheduler(99))
    selective = checker.run_second(
        build(), info, scheduler(99), selective_unary=True
    )
    return info, baseline, selective


def test_first_run_records_unary_sites(runs):
    info, _baseline, _selective = runs
    assert info.any_unary
    # the racing unary accesses live in poker; churner may occasionally
    # be swept in when a merged unary transaction spans both methods,
    # but the set must stay a strict subset of all methods
    assert "poker" in info.unary_methods
    assert "worker" not in info.unary_methods


def test_selective_run_instruments_less(runs):
    _info, baseline, selective = runs
    assert (
        selective.tx_stats.unary_accesses < baseline.tx_stats.unary_accesses
    )
    assert selective.tx_stats.skipped_accesses > baseline.tx_stats.skipped_accesses


def test_selective_run_preserves_detection(runs):
    _info, baseline, selective = runs
    assert baseline.blamed_methods
    assert selective.blamed_methods == baseline.blamed_methods


def test_info_round_trips_unary_methods():
    from repro.core.static_info import StaticTransactionInfo

    info = StaticTransactionInfo(
        frozenset({"m"}), True, frozenset({"poker"})
    )
    parsed = StaticTransactionInfo.from_json(info.to_json())
    assert parsed == info


def test_selective_falls_back_without_tracking():
    """Without tracked sites, selective_unary degrades to the baseline
    all-unary behaviour (no silent under-instrumentation)."""
    spec = AtomicitySpecification.initial(build())
    checker = DoubleChecker(spec)
    first = checker.run_first(build(), scheduler(0))  # no tracking
    assert first.static_info.unary_methods == frozenset()
    result = checker.run_second(
        build(), first.static_info, scheduler(99), selective_unary=True
    )
    assert result.tx_stats.unary_accesses > 0
