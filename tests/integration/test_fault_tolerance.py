"""Fault-tolerance of the experiment harness, end to end.

The contract under test (see ``docs/ROBUSTNESS.md``): cells are pure
functions of their picklable arguments, so any recovered run — after
injected worker crashes, hung cells, transient failures, or a
``kill -9`` resumed from a checkpoint — renders output byte-identical
to a fault-free serial run.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from repro.harness import runner, table2
from repro.harness.parallel import CellFailedError, CellPool
from repro.obs.registry import MODE_COUNTERS, MetricsRegistry, use_registry

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path / "cache"))
    runner._FINAL_SPEC_MEMO.clear()
    yield
    runner._FINAL_SPEC_MEMO.clear()


@pytest.fixture
def registry():
    registry = MetricsRegistry(MODE_COUNTERS)
    previous = use_registry(registry)
    yield registry
    use_registry(previous)


def _counters(registry):
    return registry.snapshot()["counters"]


def _triple(x):
    return x * 3


def _sleepy(x, delay):
    time.sleep(delay)
    return x


def _marked(directory, x):
    fd, _ = tempfile.mkstemp(dir=directory, prefix=f"ran-{x}-")
    os.close(fd)
    return x * 2


# ----------------------------------------------------------------------
# worker crashes
# ----------------------------------------------------------------------
def test_crash_injected_grid_renders_identical_to_serial(registry):
    serial = table2.generate(["elevator"]).render()
    with CellPool(
        4, retries=2, fault_spec="crash:0.2", fault_seed=1, backoff=0.0
    ) as pool:
        faulty = table2.generate(["elevator"], pool=pool).render()
    assert faulty == serial
    counters = _counters(registry)
    assert counters["harness.worker_crashes"] >= 1
    assert counters["harness.pool_rebuilds"] >= 1
    assert counters["harness.retries"] >= 1


def test_crash_recovery_with_serial_pool(registry):
    # inline cells simulate the crash with an exception; the parent
    # process must survive and retry
    with CellPool(
        1, retries=2, fault_spec="crash:0.5", fault_seed=0, backoff=0.0
    ) as pool:
        assert pool.starmap(_triple, [(i,) for i in range(20)]) == [
            i * 3 for i in range(20)
        ]
    assert _counters(registry)["harness.worker_crashes"] >= 1


def test_exhausted_retries_fail_loudly(registry):
    with CellPool(
        1, retries=1, fault_spec="transient:1.0:limit=5", backoff=0.0
    ) as pool:
        with pytest.raises(CellFailedError):
            pool.starmap(_triple, [(1,)])


# ----------------------------------------------------------------------
# hangs and timeouts
# ----------------------------------------------------------------------
def test_hung_cells_are_killed_and_retried(registry):
    with CellPool(
        2,
        retries=2,
        cell_timeout=1.0,
        fault_spec="hang:1.0:seconds=30",
        fault_seed=0,
        backoff=0.0,
    ) as pool:
        start = time.monotonic()
        assert pool.starmap(_sleepy, [(i, 0.01) for i in range(2)]) == [0, 1]
        elapsed = time.monotonic() - start
    # recovery waits out the 1s timeout per hung cell, never the 30s hang
    assert elapsed < 15.0
    counters = _counters(registry)
    assert counters["harness.cell_timeouts"] >= 1
    assert counters["harness.pool_rebuilds"] >= 1


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
def test_repeated_pool_failures_degrade_to_serial(registry):
    with CellPool(
        2,
        retries=4,
        fault_spec="crash:1.0:limit=3",
        fault_seed=0,
        backoff=0.0,
        max_pool_failures=2,
    ) as pool:
        assert pool.starmap(_triple, [(i,) for i in range(3)]) == [0, 3, 6]
        assert pool._degraded
        assert pool._executor is None
    assert _counters(registry)["harness.degraded_to_serial"] == 1


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
def test_checkpoint_resume_skips_completed_cells(tmp_path, registry):
    markers = tmp_path / "markers"
    markers.mkdir()
    ck = str(tmp_path / "ck.jsonl")
    with CellPool(1, checkpoint=ck) as pool:
        first = pool.starmap(_marked, [(str(markers), i) for i in range(4)])
    executed = len(os.listdir(markers))
    assert executed == 4

    with CellPool(1, checkpoint=ck) as pool:
        second = pool.starmap(_marked, [(str(markers), i) for i in range(4)])
    assert second == first == [0, 2, 4, 6]
    # resumed cells are served from the checkpoint, never re-executed
    assert len(os.listdir(markers)) == executed
    assert _counters(registry)["harness.cells_resumed"] == 4


def test_kill9_then_checkpoint_resume_renders_identical(tmp_path):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("DOUBLECHECKER_FAULT_SPEC", None)
    ck = tmp_path / "ck.jsonl"
    out_resumed = tmp_path / "resumed"
    out_clean = tmp_path / "clean"

    def cli(*extra):
        return [
            sys.executable, "-m", "repro.harness.cli",
            "table2", "--names", "hsqldb6", *extra,
        ]

    victim = subprocess.Popen(
        cli("--checkpoint", str(ck), "--out", str(out_resumed)),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    # let it complete a few cells, then kill it without any cleanup
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline and victim.poll() is None:
        try:
            with open(ck) as handle:
                if sum(1 for _ in handle) >= 3:
                    break
        except OSError:
            pass
        time.sleep(0.02)
    assert victim.poll() is None, "run finished before it could be killed"
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait()
    records_at_kill = sum(1 for _ in open(ck))
    assert records_at_kill >= 3  # header + completed cells survived

    resumed = subprocess.run(
        cli("--checkpoint", str(ck), "--out", str(out_resumed)),
        env=env, capture_output=True, text=True,
    )
    assert resumed.returncode == 0, resumed.stderr
    clean = subprocess.run(
        cli("--out", str(out_clean)),
        env=env, capture_output=True, text=True,
    )
    assert clean.returncode == 0, clean.stderr

    with open(out_resumed / "table2.txt") as handle:
        resumed_table = handle.read()
    with open(out_clean / "table2.txt") as handle:
        clean_table = handle.read()
    assert resumed_table == clean_table
