"""Property tests over the trace subsystem: replay fidelity.

A recorded trace must be a *complete* substitute for the live
execution from any analysis's point of view: replaying it through a
checker yields exactly the live checker's results, across random
programs, schedules, and a serialization round-trip.
"""

from hypothesis import given, settings

from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.core.reports import ViolationSummary
from repro.oracle.happens_before import HappensBeforeTracker
from repro.runtime.executor import Executor
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification
from repro.trace.recorder import Trace, TraceRecorder
from repro.trace.replay import replay_trace
from repro.velodrome.checker import VelodromeChecker

from tests.integration.test_soundness_properties import (
    materialize,
    program_strategy,
)


def record(method_specs, thread_scripts, seed):
    program = materialize(method_specs, thread_scripts)
    spec = AtomicitySpecification.initial(program)
    recorder = TraceRecorder()
    Executor(
        program, RandomScheduler(seed=seed, switch_prob=0.7), [recorder]
    ).run()
    return spec, recorder.trace


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_velodrome_replay_equals_live(case):
    method_specs, thread_scripts, seed = case
    spec, trace = record(method_specs, thread_scripts, seed)

    live = VelodromeChecker(spec)
    live.run(
        materialize(method_specs, thread_scripts),
        RandomScheduler(seed=seed, switch_prob=0.7),
    )
    replayed = VelodromeChecker(spec)
    replay_trace(trace, [replayed])
    assert replayed.violations.blamed_methods() == live.violations.blamed_methods()
    assert replayed.stats.edges == live.stats.edges
    assert (
        replayed.tx_manager.stats.regular_transactions
        == live.tx_manager.stats.regular_transactions
    )


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_serialization_round_trip_preserves_analysis(case):
    method_specs, thread_scripts, seed = case
    spec, trace = record(method_specs, thread_scripts, seed)
    restored = Trace.from_jsonl(trace.to_jsonl())

    def dc_blames(t):
        violations = ViolationSummary()
        pcd = PCD()
        icd = ICD(spec, on_scc=lambda c: violations.extend(pcd.process(c)))
        replay_trace(t, [icd])
        return violations.blamed_methods()

    assert dc_blames(trace) == dc_blames(restored)


@given(program_strategy)
@settings(max_examples=30, deadline=None)
def test_octet_ordering_holds_over_replay(case):
    """The happens-before theorem holds when Octet is driven by a
    replayed trace too (the shims preserve object identity)."""
    method_specs, thread_scripts, seed = case
    spec, trace = record(method_specs, thread_scripts, seed)
    icd = ICD(spec)
    tracker = HappensBeforeTracker()
    icd.octet.add_listener(tracker)
    replay_trace(trace, [icd, tracker])
    assert tracker.verify() == []
