"""Cross-mode integration on catalog workloads.

These tests run the complete mode pipelines on real catalog benchmarks
(not toy programs), pinning the relationships the paper's evaluation
rests on.
"""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.harness.runner import initial_spec, make_scheduler
from repro.velodrome.checker import VelodromeChecker
from repro.workloads import build


@pytest.mark.parametrize("name", ["hsqldb6", "lusearch9"])
def test_multi_run_pipeline_on_catalog(name):
    spec = initial_spec(name)
    checker = DoubleChecker(spec)
    result = checker.run_multi(
        lambda: build(name),
        first_trials=3,
        scheduler_factory=lambda t: make_scheduler(400 + t),
        second_scheduler=make_scheduler(499),
    )
    # first runs never log
    assert all(r.icd_stats.log_entries == 0 for r in result.first_runs)
    # the second run's static filter is the union of the first runs'
    union = set()
    for first in result.first_runs:
        union |= first.static_info.methods
    assert result.static_info.methods == frozenset(union)


@pytest.mark.parametrize("name", ["eclipse6", "xalan9"])
def test_single_run_superset_of_second_run_detection(name):
    """On the same schedule, the (restricted) second run can only find
    violations single-run mode also finds."""
    spec = initial_spec(name)
    checker = DoubleChecker(spec)
    info = checker.run_first(build(name), make_scheduler(11)).static_info
    single = checker.run_single(build(name), make_scheduler(12))
    second = checker.run_second(build(name), info, make_scheduler(12))
    assert second.blamed_methods <= single.blamed_methods | {"<unary>"}


def test_velodrome_and_single_run_verdicts_on_catalog():
    """Same-schedule verdict agreement on a real workload."""
    name = "montecarlo"
    spec = initial_spec(name)
    for seed in (21, 22, 23):
        velodrome = VelodromeChecker(spec).run(build(name), make_scheduler(seed))
        single = DoubleChecker(spec).run_single(build(name), make_scheduler(seed))
        assert bool(velodrome.violations) == bool(single.violations), seed


def test_second_run_cheaper_than_single_run_on_disjoint():
    """For a disjoint benchmark the first run finds nothing and the
    second run instruments nothing at all."""
    name = "pmd9"
    spec = initial_spec(name)
    checker = DoubleChecker(spec)
    info = checker.run_first(build(name), make_scheduler(31)).static_info
    assert info.is_empty()
    second = checker.run_second(build(name), info, make_scheduler(32))
    assert second.icd_stats.instrumented_accesses == 0


def test_out_of_memory_error_reports_component():
    from repro.errors import OutOfMemoryBudget

    spec = initial_spec("avrora9")
    checker = DoubleChecker(spec, icd_memory_budget=100, gc_interval=None)
    with pytest.raises(OutOfMemoryBudget) as info:
        checker.run_single(build("avrora9"), make_scheduler(5))
    assert info.value.component == "ICD"
