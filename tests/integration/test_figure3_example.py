"""A Figure 3-style scenario under a scripted scheduler.

Reconstructs the paper's running example: seven threads whose accesses
to two objects drive every ICD edge-creation procedure — conflicting
transitions, upgrades to RdSh (with the ``lastRdEx`` and ``gLastRdSh``
edges), the gLastRdSh ordering chain, fence transitions, and the
no-fence fast path — ending with an imprecise SCC of size four whose
precise cycle (extracted by PCD) has exactly two transactions, blamed
on the transaction that completed it.

Exact interleaving (one scheduler slot per runtime step):

====  ======================================================================
step  action
====  ======================================================================
T1    wr o.f            → o: WrEx(T1); Tx1 stays open
T2    rd o.g            → conflicting; o: RdEx(T2); edge Tx1→Tx2; Tx2 ends
T6    rd p.r            → initial; p: RdEx(T6); Tx6 ends
T5    rd p.q            → upgrading; p: RdSh(1); edge Tx6→Tx5 (lastRdEx);
                          gLastRdSh := Tx5; Tx5 ends
T3    rd o.f            → upgrading; o: RdSh(2); edges Tx2→Tx3 (lastRdEx),
                          Tx5→Tx3 (gLastRdSh chain); gLastRdSh := Tx3
T4    rd o.h            → fence (T4.rdShCnt 0 < 2); edge Tx3→Tx4; Tx4 ends
T7    rd o.h            → fence (counter → 2); edge Tx3→Tx7
T7    rd p.q            → NO fence (2 ≥ 1): the transitive-capture case
T3    wr o.g            → conflicting RdSh→WrEx; responders = every
                          other thread that ever ran (readers of a RdSh
                          object are not tracked, and finished threads
                          respond via the implicit protocol): edges from
                          each thread's current-or-latest transaction
                          into Tx3; Tx3 ends
T7    (ends)
T1    rd o.g            → conflicting WrEx(T3)→RdEx(T1); edge Tx3→Tx1;
                          Tx1 ends → an SCC containing
                          {Tx1,Tx2,Tx3,Tx7} (plus further transactions
                          the all-thread edges drag in — pure
                          imprecision); PCD extracts the precise cycle
                          {Tx1,Tx3}
====  ======================================================================
"""

import pytest

from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.octet.states import StateKind
from repro.runtime.executor import Executor
from repro.runtime.ops import Compute, Invoke, Read, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import ScriptedScheduler
from repro.spec.specification import AtomicitySpecification


def build_scenario():
    program = Program("figure3")
    o = program.add_global_object("o")
    p = program.add_global_object("p")

    def tx1(ctx):
        yield Write(o, "f", 1)
        yield Compute(1)          # Tx1 stays open while others run
        yield Read(o, "g")        # reads T3's write: closes the cycle

    def tx2(ctx):
        yield Read(o, "g")

    def tx3(ctx):
        yield Read(o, "f")        # upgrading: lastRdEx + gLastRdSh edges
        yield Write(o, "g", 3)    # conflicting: o RdSh -> WrEx(T3)

    def tx4(ctx):
        yield Read(o, "h")        # fence on a different field: imprecise

    def tx5(ctx):
        yield Read(p, "q")        # upgrades p to RdSh(1)

    def tx6(ctx):
        yield Read(p, "r")        # initial RdEx(T6)

    def tx7(ctx):
        yield Read(o, "h")        # fence brings T7's counter to 2
        yield Read(p, "q")        # 2 >= 1: no fence (transitive capture)

    bodies = {1: tx1, 2: tx2, 3: tx3, 4: tx4, 5: tx5, 6: tx6, 7: tx7}
    for i, body in bodies.items():
        program.method(body, name=f"tx{i}")

        def entry(ctx, index=i):
            yield Invoke(f"tx{index}")

        program.method(entry, name=f"t{i}")
        program.mark_entry(f"t{i}")
        program.add_thread(f"T{i}", f"t{i}")
    return program, o, p


SCRIPT = (
    ["T1"] * 3        # start, invoke, wr o.f
    + ["T2"] * 5      # start, invoke, rd o.g, end tx2, end t2
    + ["T6"] * 5      # start, invoke, rd p.r, end, end
    + ["T5"] * 5      # start, invoke, rd p.q (upgrade), end, end
    + ["T3"] * 3      # start, invoke, rd o.f (upgrade)
    + ["T4"] * 5      # start, invoke, rd o.h (fence), end, end
    + ["T7"] * 4      # start, invoke, rd o.h (fence), rd p.q (no fence)
    + ["T3"] * 2      # wr o.g (conflicting), end tx3
    + ["T7"] * 1      # end tx7 (T7 stays alive: its thread-end is later)
    + ["T1"] * 4      # compute, rd o.g (conflicting), end tx1 -> SCC, end t1
    + ["T3"] * 1      # end t3
    + ["T7"] * 1      # end t7
)


@pytest.fixture(scope="module")
def run():
    program, o, p = build_scenario()
    spec = AtomicitySpecification.initial(program)
    assert all(spec.is_atomic(f"tx{i}") for i in range(1, 8))

    pcd = PCD()
    components = []
    violations = []

    def on_scc(component):
        components.append(list(component))
        violations.extend(pcd.process(component))

    icd = ICD(spec, on_scc=on_scc)
    Executor(program, ScriptedScheduler(SCRIPT), [icd]).run()
    return {
        "icd": icd,
        "components": components,
        "violations": violations,
        "o": o,
        "p": p,
    }


def test_octet_states_follow_the_figure(run):
    icd, o, p = run["icd"], run["o"], run["p"]
    o_state = icd.octet.state_of(o.oid)
    # T1's final read moved o from WrEx(T3) to RdEx(T1)
    assert o_state.kind is StateKind.RD_EX
    assert o_state.owner == "T1"
    p_state = icd.octet.state_of(p.oid)
    assert p_state.kind is StateKind.RD_SH
    assert p_state.counter == 1


def test_transitions_cover_every_icd_procedure(run):
    stats = run["icd"].octet.stats
    assert stats.conflicting == 3        # T2's read, T3's write, T1's read
    assert stats.upgrading_rd_sh == 2    # p -> RdSh(1), o -> RdSh(2)
    assert stats.fences == 2             # T4's and T7's stale reads
    assert stats.fast_path > 0           # T7's no-fence read among them


def test_thread_counters_after_fences(run):
    octet = run["icd"].octet
    assert octet.g_rdsh_counter == 2
    assert octet.thread_counter("T3") == 2   # set by its own upgrade
    assert octet.thread_counter("T4") == 2   # fenced
    assert octet.thread_counter("T7") == 2   # fenced once, then fast path
    assert octet.thread_counter("T6") == 0   # never read a RdSh object


def test_icd_detects_a_superset_scc(run):
    components = run["components"]
    assert components
    largest = max(components, key=len)
    methods = {tx.method for tx in largest}
    # the figure's four cycle-forming transactions are all present...
    assert {"tx1", "tx2", "tx3", "tx7"} <= methods
    # ...inside a strictly larger imprecise component (the RdSh→WrEx
    # all-thread edges drag in bystanders — ICD's documented imprecision)
    assert len(largest) >= 4


def test_pcd_extracts_the_precise_two_cycle(run):
    violations = run["violations"]
    assert len(violations) == 1
    assert set(violations[0].cycle_methods) == {"tx1", "tx3"}


def test_blame_falls_on_tx1(run):
    """Tx1's outgoing edge existed before its incoming edge: it kept
    running after its effects escaped and completed the cycle."""
    assert run["violations"][0].blamed_method == "tx1"


def test_imprecise_members_fully_filtered(run):
    """Tx2 and Tx7 are in the imprecise SCC but in no precise cycle."""
    for violation in run["violations"]:
        assert "tx2" not in violation.cycle_methods
        assert "tx7" not in violation.cycle_methods
