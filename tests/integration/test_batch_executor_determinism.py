"""The columnar batch executor is a pure optimization.

``DOUBLECHECKER_BATCH_EXECUTOR=0`` runs the reference per-op
interpreter — every scripted body interpreted one ``yield`` at a time
through the generic op dispatch — while the default lowers scriptable
bodies into columnar arrays and drives scheduler quanta through the
tight batch loop, feeding the fused barrier pre-interned column
values.  Everything observable must be identical between the two arms:

* the executor's own results: step counts, access counts, and the
  per-thread step accounting;
* the stream of transition records delivered to Octet listeners;
* the IDG (edge endpoints, kinds, and creation order);
* every transaction's read/write log, entry for entry (including the
  interned site strings the lowered columns carry);
* the barrier counters, elision counters, and reported violations;
* end-to-end: Table 2, Table 3, and Figure 7 outputs, byte for byte
  (Figure 7 modulo its measured wall-clock columns, which are not
  deterministic between any two runs).

The random programs here are *scripted* — built from the script IR via
``script_body`` — so the batch arm actually exercises lowering and the
batch loop (asserted via the executor's frame counters), unlike the
generator programs of test_barrier_fastpath_determinism, which the
batch arm merely delegates.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.core.reports import ViolationSummary
from repro.harness import runner, table2, table3
from repro.runtime.executor import Executor
from repro.runtime.lowering import BATCH_ENV, script_body
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification

from tests.integration.test_barrier_fastpath_determinism import (
    TransitionLog,
    _dump_edges,
    _dump_logs,
)

# ----------------------------------------------------------------------
# random *scripted* programs
# ----------------------------------------------------------------------
# an op is (kind, object index, slot):
#   0 = field read, 1 = field write, 2 = locked read+increment,
#   3 = array read, 4 = array write
# slot % 2 picks the field for kinds 0-2; slot picks the array index
# for kinds 3-4
op_strategy = st.tuples(
    st.integers(0, 4), st.integers(0, 1), st.integers(0, 3)
)
method_strategy = st.lists(op_strategy, min_size=1, max_size=4)
program_strategy = st.tuples(
    st.lists(method_strategy, min_size=1, max_size=4),   # method bodies
    st.lists(                                            # per-thread call scripts
        st.lists(st.integers(0, 3), min_size=1, max_size=6),
        min_size=2,
        max_size=3,
    ),
    st.integers(0, 10_000),                              # scheduler seed
)


def materialize_scripted(method_specs, thread_scripts):
    """Build the random program entirely from script-IR bodies."""
    program = Program("random-scripted")
    objects = program.add_global_objects("objs", 2)
    arr = program.add_global_array("arr", 4)

    for index, ops in enumerate(method_specs):
        def make_script(ops=ops):
            def script(ctx):
                out = []
                for kind, obj_index, slot in ops:
                    obj = objects[obj_index]
                    fieldname = f"f{slot % 2}"
                    if kind == 0:
                        out.append(("read", obj, fieldname, None))
                    elif kind == 1:
                        out.append(("write", obj, fieldname, ("const", 1)))
                    elif kind == 2:
                        out.append(("acquire", obj))
                        out.append(("read", obj, fieldname, "v"))
                        out.append(("write", obj, fieldname, ("inc", "v", 1)))
                        out.append(("release", obj))
                    elif kind == 3:
                        out.append(("aread", arr, slot, None))
                    else:
                        out.append(("awrite", arr, slot, ("const", 1)))
                return out

            return script

        program.method(script_body(make_script()), name=f"m{index}")

    method_count = len(method_specs)
    for tid, script in enumerate(thread_scripts):
        def make_worker(script=script):
            def worker(ctx):
                return [
                    ("invoke", f"m{call % method_count}", ())
                    for call in script
                ]

            return worker

        name = f"worker{tid}"
        program.method(script_body(make_worker()), name=name)
        program.mark_entry(name)
        program.add_thread(f"T{tid}", name)
    return program


def _run_arm(batch, method_specs, thread_scripts, seed):
    saved = os.environ.get(BATCH_ENV)
    os.environ[BATCH_ENV] = "1" if batch else "0"
    try:
        program = materialize_scripted(method_specs, thread_scripts)
        spec = AtomicitySpecification.initial(program)
        pcd = PCD()
        violations = ViolationSummary()
        icd = ICD(
            spec,
            on_scc=lambda comp: violations.extend(pcd.process(comp)),
            gc_interval=None,
        )
        transitions = TransitionLog()
        icd.octet.add_listener(transitions)
        executor = Executor(
            program, RandomScheduler(seed=seed, switch_prob=0.7), [icd]
        )
        result = executor.run()
        octet_stats = icd.octet.stats
        return {
            # the executor's own observables
            "steps": result.steps,
            "access_count": result.access_count,
            "sync_access_count": result.sync_access_count,
            "per_thread_ops": result.per_thread_ops,
            "thread_names": result.thread_names,
            # everything the analysis pipeline saw
            "transitions": transitions.records,
            "edges": _dump_edges(icd),
            "logs": _dump_logs(icd),
            "barriers": octet_stats.barriers,
            "fast_path": octet_stats.fast_path,
            "fused": octet_stats.fast_path_fused,
            "idg_edges": icd.stats.idg_edges,
            "log_entries": icd.stats.log_entries,
            "log_marks": icd.stats.log_marks,
            "elision": (icd._elision.stats.logged, icd._elision.stats.elided),
            "violations": [
                (r.blamed_method, r.blamed_tx_id, r.thread_name,
                 r.cycle_methods, r.cycle_tx_ids, r.detector)
                for r in violations.records
            ],
            # did the batch machinery actually run?
            "frames_lowered": executor._batch_frames_lowered,
        }
    finally:
        if saved is None:
            os.environ.pop(BATCH_ENV, None)
        else:
            os.environ[BATCH_ENV] = saved


@given(program_strategy)
@settings(max_examples=50, deadline=None)
def test_batch_arms_identical_on_random_scripted_programs(case):
    method_specs, thread_scripts, seed = case
    batched = _run_arm(True, method_specs, thread_scripts, seed)
    reference = _run_arm(False, method_specs, thread_scripts, seed)

    # the batch arm must have lowered every scripted body it ran
    assert batched["frames_lowered"] > 0
    assert reference["frames_lowered"] == 0
    for key in batched:
        if key == "frames_lowered":
            continue
        assert batched[key] == reference[key], key


# ----------------------------------------------------------------------
# end-to-end: the experiment tables, byte for byte
# ----------------------------------------------------------------------
TABLE2_NAMES = ["hedc", "elevator"]
TABLE3_NAMES = ["hedc", "elevator"]
FIGURE7_NAMES = ["hedc"]


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    """Fresh final-spec cache per arm so neither arm reuses the other's
    refinement results (the comparison must exercise both executors
    end to end)."""

    def activate(arm):
        cache = tmp_path / arm
        cache.mkdir()
        monkeypatch.setattr(runner, "CACHE_DIR", str(cache))
        runner._FINAL_SPEC_MEMO.clear()

    yield activate
    runner._FINAL_SPEC_MEMO.clear()


def _both_arms(monkeypatch, isolated_cache, produce):
    outputs = []
    for arm, value in (("batch", "1"), ("reference", "0")):
        isolated_cache(arm)
        monkeypatch.setenv(BATCH_ENV, value)
        outputs.append(produce())
    return outputs


def test_table2_bytes_identical_across_arms(monkeypatch, isolated_cache):
    batched, reference = _both_arms(
        monkeypatch,
        isolated_cache,
        lambda: table2.generate(
            TABLE2_NAMES, trials_per_step=2, seed_base=0
        ).render(),
    )
    assert batched == reference


def test_table3_bytes_identical_across_arms(monkeypatch, isolated_cache):
    batched, reference = _both_arms(
        monkeypatch,
        isolated_cache,
        lambda: table3.generate(
            TABLE3_NAMES, trials=1, first_trials=1, seed_base=40_000
        ).render(),
    )
    assert batched == reference


def test_figure7_bytes_identical_across_arms(monkeypatch, isolated_cache):
    from repro.harness import figure7

    def produce():
        result = figure7.generate(
            FIGURE7_NAMES, trials=1, first_trials=1, seed_base=50_000
        )
        # the meas* columns are wall-clock ratios — not deterministic
        # between *any* two runs; everything modelled must match
        for row in result.rows:
            row.measured = {}
        return result.render()

    batched, reference = _both_arms(monkeypatch, isolated_cache, produce)
    assert batched == reference
