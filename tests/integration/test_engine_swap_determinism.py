"""End-to-end determinism of the incremental-engine swap.

``tests/integration/fixtures/engine_swap_goldens.json`` was captured
from the pre-engine code (whole-graph DFS per edge, full Tarjan per
transaction end).  The engine is a pure scheduling optimization: the
cycle *reports* — Table 2's blamed-method sets and Table 3's graph
columns — must stay byte-identical, serially and under ``--jobs 4``.
Only the work counters (visits, computations) are allowed to change.
"""

import json
import os

import pytest

from repro.harness import runner, table2, table3
from repro.harness.parallel import CellPool

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "engine_swap_goldens.json"
)


@pytest.fixture(scope="module")
def goldens():
    with open(FIXTURE) as handle:
        return json.load(handle)


@pytest.fixture(autouse=True)
def seeded_caches(tmp_path, monkeypatch, goldens):
    """Point the final-spec cache at the fixture's recorded exclusions.

    Table 3 runs under the final refined specifications; seeding the
    cache from the golden capture pins the same specs without redoing
    refinement, so the comparison isolates the engine swap.
    """
    monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
    runner._FINAL_SPEC_MEMO.clear()
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(os.path.join(str(tmp_path), "final_specs.json"), "w") as handle:
        json.dump(goldens["final_spec_exclusions"], handle)
    yield
    runner._FINAL_SPEC_MEMO.clear()


@pytest.fixture(scope="module")
def jobs4():
    with CellPool(4) as pool:
        yield pool


def _blamed_maps(result):
    return {
        row.name: {
            "velodrome": sorted(row.velodrome_blamed),
            "single": sorted(row.single_blamed),
            "multi": sorted(row.multi_blamed),
        }
        for row in result.rows
    }


def test_table2_blamed_sets_match_pre_engine_golden(goldens):
    params = goldens["table2_params"]
    result = table2.generate(
        goldens["table2_names"],
        trials_per_step=params["trials_per_step"],
        seed_base=params["seed_base"],
    )
    assert _blamed_maps(result) == goldens["table2_blamed"]
    assert result.render() == goldens["table2_render"]


def test_table2_parallel_matches_pre_engine_golden(goldens, jobs4):
    params = goldens["table2_params"]
    result = table2.generate(
        goldens["table2_names"],
        trials_per_step=params["trials_per_step"],
        seed_base=params["seed_base"],
        pool=jobs4,
    )
    assert _blamed_maps(result) == goldens["table2_blamed"]
    assert result.render() == goldens["table2_render"]


def test_table3_render_matches_pre_engine_golden(goldens):
    params = goldens["table3_params"]
    result = table3.generate(
        goldens["table3_names"],
        trials=params["trials"],
        first_trials=params["first_trials"],
        seed_base=params["seed_base"],
    )
    assert result.render() == goldens["table3_render"]


def test_table3_parallel_matches_pre_engine_golden(goldens, jobs4):
    params = goldens["table3_params"]
    result = table3.generate(
        goldens["table3_names"],
        trials=params["trials"],
        first_trials=params["first_trials"],
        seed_base=params["seed_base"],
        pool=jobs4,
    )
    assert result.render() == goldens["table3_render"]
