"""The offline (Farzan & Parthasarathy-style) comparator."""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.offline.checker import OfflineChecker
from repro.runtime.ops import Acquire, Compute, Invoke, Read, Release, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification
from repro.trace.recorder import record_execution

from tests.util import counter_program, spec_for


def scheduler(seed=5):
    return RandomScheduler(seed=seed, switch_prob=0.7)


class TestDataConflicts:
    def test_detects_split_rmw(self):
        program = counter_program(threads=2, iterations=12)
        spec = spec_for(program)
        trace = record_execution(program, scheduler())
        result = OfflineChecker(spec).check(trace)
        assert "rmw" in {
            m for r in result.violations.records for m in r.cycle_methods
        }

    def test_clean_program_clean_verdict(self):
        program = counter_program(threads=2, iterations=12, locked=True)
        spec = spec_for(program)
        trace = record_execution(program, scheduler())
        result = OfflineChecker(spec).check(trace)
        assert not result.violations

    @pytest.mark.parametrize("seed", [3, 9, 27])
    def test_verdict_matches_doublechecker_on_data_conflicts(self, seed):
        """On lock-free workloads (no synchronization edges to differ
        over), the offline checker and DoubleChecker agree."""
        program = counter_program(threads=3, iterations=15)
        spec = spec_for(program)
        trace = record_execution(program, scheduler(seed))
        offline = OfflineChecker(spec).check(trace)

        online = DoubleChecker(spec).run_single(
            counter_program(threads=3, iterations=15), scheduler(seed)
        )
        assert bool(offline.violations) == bool(online.violations)


class TestSynchronizationEdges:
    def _sync_only_program(self):
        """Two atomic methods whose only interaction is the lock: each
        takes the same lock twice with a gap.  Release–acquire edges
        form a cycle between overlapping transactions, but there is no
        data conflict — the paper's Section 6 false-positive shape."""
        program = Program("synconly")
        lock = program.add_global_object("lock")
        mine = program.add_global_objects("mine", 2)

        def double_critical(ctx, lane):
            yield Acquire(lock)
            value = yield Read(mine[lane], "x")
            yield Write(mine[lane], "x", (value or 0) + 1)
            yield Release(lock)
            yield Compute(2)
            yield Acquire(lock)
            value = yield Read(mine[lane], "y")
            yield Write(mine[lane], "y", (value or 0) + 1)
            yield Release(lock)

        def worker(ctx, lane):
            for _ in range(6):
                yield Invoke("double_critical", (lane,))

        program.method(double_critical, name="double_critical")
        program.method(worker, name="worker")
        program.mark_entry("worker")
        program.add_thread("A", "worker", (0,))
        program.add_thread("B", "worker", (1,))
        return program

    def test_online_checkers_report_sync_cycle(self):
        """Velodrome (and DoubleChecker, which follows it) treat
        release–acquire as dependences and report this."""
        program = self._sync_only_program()
        spec = AtomicitySpecification.initial(program)
        result = DoubleChecker(spec).run_single(
            self._sync_only_program(), scheduler(seed=13)
        )
        assert "double_critical" in result.blamed_methods

    def test_offline_checker_does_not(self):
        """[9] does not track synchronization edges: no false positive."""
        program = self._sync_only_program()
        spec = AtomicitySpecification.initial(program)
        trace = record_execution(self._sync_only_program(), scheduler(seed=13))
        result = OfflineChecker(spec).check(trace)
        assert not result.violations
        assert result.stats.sync_accesses_skipped > 0

    def test_offline_with_sync_edges_matches_online(self):
        program = self._sync_only_program()
        spec = AtomicitySpecification.initial(program)
        trace = record_execution(self._sync_only_program(), scheduler(seed=13))
        result = OfflineChecker(spec, track_sync_edges=True).check(trace)
        assert result.violations


class TestSummarization:
    def test_summarization_bounds_live_state(self):
        program = counter_program(threads=3, iterations=60)
        spec = spec_for(program)
        trace = record_execution(program, scheduler())
        summarized = OfflineChecker(spec, summarize_interval=8).check(trace)
        assert summarized.gc_stats.transactions_collected > 0

    def test_summarization_preserves_verdicts(self):
        def verdict(interval, seed):
            program = counter_program(threads=3, iterations=25)
            spec = spec_for(program)
            trace = record_execution(program, scheduler(seed))
            result = OfflineChecker(spec, summarize_interval=interval).check(
                trace
            )
            return bool(result.violations)

        for seed in (1, 2, 3):
            assert verdict(None, seed) == verdict(6, seed)

    def test_unary_only_cycles_not_reported(self):
        """A cycle with no regular transaction implicates no specified
        atomic region."""
        program = Program("unaryonly")
        shared = program.add_global_object("shared")

        def body(ctx):
            for _ in range(10):
                value = yield Read(shared, "x")
                yield Write(shared, "x", (value or 0) + 1)

        program.method(body, name="body")
        program.mark_entry("body")
        program.add_thread("A", "body")
        program.add_thread("B", "body")
        spec = AtomicitySpecification.initial(program)
        trace = record_execution(program, scheduler(seed=2))
        result = OfflineChecker(spec).check(trace)
        assert result.blamed_methods == set()
