"""Property tests for the offline checker's summarization."""

from hypothesis import given, settings

from repro.offline.checker import OfflineChecker
from repro.runtime.executor import Executor
from repro.runtime.scheduler import RandomScheduler
from repro.spec.specification import AtomicitySpecification
from repro.trace.recorder import TraceRecorder

from tests.integration.test_soundness_properties import (
    materialize,
    program_strategy,
)


def record(method_specs, thread_scripts, seed):
    program = materialize(method_specs, thread_scripts)
    spec = AtomicitySpecification.initial(program)
    recorder = TraceRecorder()
    Executor(
        program, RandomScheduler(seed=seed, switch_prob=0.7), [recorder]
    ).run()
    return spec, recorder.trace


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_summarization_never_changes_the_verdict(case):
    method_specs, thread_scripts, seed = case
    spec, trace = record(method_specs, thread_scripts, seed)
    unsummarized = OfflineChecker(spec, summarize_interval=None).check(trace)
    summarized = OfflineChecker(spec, summarize_interval=4).check(trace)
    assert bool(unsummarized.violations) == bool(summarized.violations)
    assert (
        unsummarized.violations.blamed_methods()
        == summarized.violations.blamed_methods()
    )


@given(program_strategy)
@settings(max_examples=40, deadline=None)
def test_offline_verdict_bounded_by_online_with_sync(case):
    """Without sync edges the offline checker can only find a subset of
    what the sync-tracking configuration finds (sync edges only ever
    add dependences)."""
    method_specs, thread_scripts, seed = case
    spec, trace = record(method_specs, thread_scripts, seed)
    no_sync = OfflineChecker(spec, track_sync_edges=False).check(trace)
    with_sync = OfflineChecker(spec, track_sync_edges=True).check(trace)
    if no_sync.violations:
        assert with_sync.violations


@given(program_strategy)
@settings(max_examples=30, deadline=None)
def test_offline_agrees_with_oracle_on_lock_free_traces(case):
    """When the trace has no lock traffic at all (every method body is
    read/write-only), sync edges are irrelevant and the offline checker
    matches the whole-trace oracle's verdict."""
    method_specs, thread_scripts, seed = case
    # strip locked-rmw ops (kind 2) so no monitors are touched
    stripped = [
        [(0 if kind == 2 else kind, o, f) for kind, o, f in body]
        for body in method_specs
    ]
    spec, trace = record(stripped, thread_scripts, seed)

    from repro.core.icd import ICD
    from repro.core.pcd import PCD
    from repro.core.reports import ViolationSummary
    from repro.trace.replay import replay_trace

    violations = ViolationSummary()
    pcd = PCD()
    icd = ICD(spec, on_scc=lambda c: violations.extend(pcd.process(c)))
    replay_trace(trace, [icd])

    offline = OfflineChecker(spec).check(trace)
    assert bool(offline.violations) == bool(violations)
