"""Equivalence of the incremental runnable set with the old scan loop.

The executor used to rebuild (and re-sort) the live/runnable lists on
every scheduler step; it now maintains the runnable set incrementally
across thread state transitions.  These tests pin the optimization to
a reference re-implementation of the old loop: on random programs —
including ones that deadlock — both executors must produce the
identical event sequence and the identical outcome.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError
from repro.runtime.executor import Executor
from repro.runtime.listeners import ExecutionListener
from repro.runtime.ops import (
    Acquire,
    Compute,
    Fork,
    Join,
    Read,
    Release,
    Write,
)
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler


class ReferenceExecutor(Executor):
    """The pre-optimization run loop: rebuild live/runnable every step.

    Uses the same stepping, lock, and listener machinery as the real
    executor — only the scheduling loop differs — so any divergence is
    attributable to the incremental runnable-set bookkeeping.
    """

    def run(self):
        from repro.errors import ProgramError, StepLimitExceeded

        self.scheduler.reset()
        self._on_access = self.pipeline.on_access
        for spec in self.program.threads:
            self._spawn(spec.name, spec.method, spec.args)

        while True:
            live = [t for t in self.threads.values() if t.is_live()]
            if not live:
                break
            runnable = sorted(t.name for t in live if t.is_runnable())
            if not runnable:
                blocked = {t.name: t.state.value for t in live}
                raise DeadlockError(blocked)
            chosen = self.scheduler.choose(runnable, self._steps)
            if chosen not in runnable:
                raise ProgramError(
                    f"scheduler chose non-runnable thread {chosen!r}"
                )
            self._steps += 1
            if self._steps > self.step_limit:
                raise StepLimitExceeded(self.step_limit)
            self._step(self.threads[chosen])

        self.pipeline.on_execution_end()
        return None


class _Tracer(ExecutionListener):
    def __init__(self):
        self.events = []

    def on_access(self, event):
        self.events.append(
            (
                event.seq,
                event.thread_name,
                event.obj.label,
                event.fieldname,
                event.kind,
                event.is_sync,
            )
        )


# ----------------------------------------------------------------------
# random program generation
# ----------------------------------------------------------------------
#: an action is one of
#:   ("rw", obj_index, field_index, write?)
#:   ("compute", cost)
#:   ("lock", obj_index, [inner actions])   -> acquire/…/release
_action = st.deferred(
    lambda: st.one_of(
        st.tuples(
            st.just("rw"),
            st.integers(0, 2),
            st.integers(0, 1),
            st.booleans(),
        ),
        st.tuples(st.just("compute"), st.integers(1, 3)),
        st.tuples(
            st.just("lock"),
            st.integers(0, 2),
            st.lists(_action, max_size=3),
        ),
    )
)

_thread_bodies = st.lists(
    st.lists(_action, max_size=6), min_size=2, max_size=4
)


def _emit(actions, ctx_objects):
    for action in actions:
        if action[0] == "rw":
            _, obj_index, field_index, is_write = action
            obj = ctx_objects[obj_index]
            if is_write:
                yield Write(obj, f"f{field_index}", 1)
            else:
                yield Read(obj, f"f{field_index}")
        elif action[0] == "compute":
            yield Compute(action[1])
        else:
            _, obj_index, inner = action
            obj = ctx_objects[obj_index]
            yield Acquire(obj)
            for op in _emit(inner, ctx_objects):
                yield op
            yield Release(obj)


def _build_program(bodies, with_fork):
    """One top-level thread per body; optionally the first thread also
    forks (and joins) a child running the last body."""
    program = Program("random")
    objects = [program.add_global_object(f"o{i}") for i in range(3)]

    for index, body in enumerate(bodies):
        def method(ctx, _body=body):
            for op in _emit(_body, objects):
                yield op

        program.method(method, name=f"m{index}")

    if with_fork:
        def forker(ctx):
            yield Fork("child", f"m{len(bodies) - 1}")
            for op in _emit(bodies[0], objects):
                yield op
            yield Join("child")

        program.method(forker, name="forker")
        program.add_thread("T0", "forker")
    else:
        program.add_thread("T0", "m0")
    for index in range(1, len(bodies)):
        program.add_thread(f"T{index}", f"m{index}")
    return program


def _trace(executor_cls, bodies, with_fork, seed):
    tracer = _Tracer()
    program = _build_program(bodies, with_fork)
    executor = executor_cls(
        program,
        RandomScheduler(seed=seed, switch_prob=0.7),
        [tracer],
        step_limit=50_000,
    )
    try:
        executor.run()
    except DeadlockError as deadlock:
        return tracer.events, ("deadlock", sorted(deadlock.blocked.items()))
    return tracer.events, ("done", executor._steps)


@settings(max_examples=60, deadline=None)
@given(bodies=_thread_bodies, with_fork=st.booleans(), seed=st.integers(0, 999))
def test_incremental_runnable_set_matches_reference(bodies, with_fork, seed):
    """Identical (seq, thread, obj, field, kind) sequences — and
    identical deadlock verdicts — on random programs."""
    reference = _trace(ReferenceExecutor, bodies, with_fork, seed)
    optimized = _trace(Executor, bodies, with_fork, seed)
    assert reference == optimized


def test_reference_and_optimized_agree_on_deadlocks():
    """A lock-order inversion: for every seed both executors must agree,
    and at least one seed must actually deadlock."""
    bodies = [
        [("lock", 0, [("compute", 3), ("lock", 1, [])])],
        [("lock", 1, [("compute", 3), ("lock", 0, [])])],
    ]
    outcomes = []
    for seed in range(10):
        reference = _trace(ReferenceExecutor, bodies, False, seed)
        optimized = _trace(Executor, bodies, False, seed)
        assert reference == optimized
        outcomes.append(optimized[1][0])
    assert "deadlock" in outcomes
