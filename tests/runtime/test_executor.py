"""Executor semantics: stepping, heap, calls, fork/join, errors."""

import pytest

from repro.errors import DeadlockError, ProgramError, StepLimitExceeded
from repro.runtime.events import AccessKind
from repro.runtime.executor import Executor, run_program
from repro.runtime.listeners import ExecutionListener
from repro.runtime.ops import (
    Acquire,
    Compute,
    Fork,
    Invoke,
    Join,
    New,
    NewArray,
    ArrayRead,
    ArrayWrite,
    Read,
    Release,
    Write,
)
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler

from tests.util import counter_program


class Recorder(ExecutionListener):
    """Records every event for assertions."""

    def __init__(self):
        self.accesses = []
        self.methods = []
        self.threads = []

    def on_access(self, event):
        self.accesses.append(event)

    def on_method_enter(self, thread, method, depth):
        self.methods.append(("enter", thread, method, depth))

    def on_method_exit(self, thread, method, depth):
        self.methods.append(("exit", thread, method, depth))

    def on_thread_start(self, thread):
        self.threads.append(("start", thread))

    def on_thread_end(self, thread):
        self.threads.append(("end", thread))


def single_thread_program(body):
    program = Program("single")
    program.method(body, name="main")
    program.add_thread("T", "main")
    return program


def test_read_returns_written_value():
    observed = []

    def body(ctx):
        obj = yield New("o")
        yield Write(obj, "f", 42)
        value = yield Read(obj, "f")
        observed.append(value)

    run_program(single_thread_program(body))
    assert observed == [42]


def test_unwritten_field_reads_zero():
    observed = []

    def body(ctx):
        obj = yield New("o")
        observed.append((yield Read(obj, "missing")))

    run_program(single_thread_program(body))
    assert observed == [0]


def test_array_read_write_roundtrip():
    observed = []

    def body(ctx):
        arr = yield NewArray("a", 4, fill=7)
        observed.append((yield ArrayRead(arr, 2)))
        yield ArrayWrite(arr, 2, 99)
        observed.append((yield ArrayRead(arr, 2)))

    run_program(single_thread_program(body))
    assert observed == [7, 99]


def test_invoke_passes_args_and_returns_value():
    observed = []

    def helper(ctx, a, b):
        yield Compute(1)
        return a + b

    def body(ctx):
        result = yield Invoke("helper", (3, 4))
        observed.append(result)

    program = Program("p")
    program.method(helper, name="helper")
    program.method(body, name="main")
    program.add_thread("T", "main")
    run_program(program)
    assert observed == [7]


def test_non_generator_method_body():
    observed = []

    def plain(ctx, x):
        return x * 2

    def body(ctx):
        observed.append((yield Invoke("plain", (21,))))

    program = Program("p")
    program.method(plain, name="plain")
    program.method(body, name="main")
    program.add_thread("T", "main")
    run_program(program)
    assert observed == [42]


def test_method_enter_exit_events_nest():
    recorder = Recorder()

    def inner(ctx):
        yield Compute(1)

    def outer(ctx):
        yield Invoke("inner")

    program = Program("p")
    program.method(inner, name="inner")
    program.method(outer, name="outer")
    program.add_thread("T", "outer")
    Executor(program, listeners=[recorder]).run()
    entered = [m for m in recorder.methods if m[0] == "enter"]
    exited = [m for m in recorder.methods if m[0] == "exit"]
    assert [m[2] for m in entered] == ["outer", "inner"]
    assert [m[2] for m in exited] == ["inner", "outer"]
    # inner is entered at depth 2
    assert entered[1][3] == 2


def test_locked_counter_is_exact():
    program = counter_program(threads=3, iterations=10, locked=True)
    run_program(program, RandomScheduler(seed=5, switch_prob=0.8))
    counter = program.make_context().counter
    assert counter.fields["value"] == 30


def test_racy_counter_loses_updates():
    program = counter_program(threads=2, iterations=30, locked=False, gap=4)
    run_program(program, RandomScheduler(seed=9, switch_prob=0.9))
    counter = program.make_context().counter
    assert counter.fields["value"] < 60


def test_fork_join_waits_for_children():
    order = []

    def child(ctx):
        yield Compute(5)
        order.append("child")

    def main(ctx):
        yield Fork("C", "child")
        yield Join("C")
        order.append("main")

    program = Program("p")
    program.method(child, name="child")
    program.method(main, name="main")
    program.add_thread("M", "main")
    run_program(program, RandomScheduler(seed=1))
    assert order == ["child", "main"]


def test_join_unknown_thread_raises():
    def main(ctx):
        yield Join("nope")

    with pytest.raises(ProgramError):
        run_program(single_thread_program(main))


def test_fork_duplicate_name_raises():
    def child(ctx):
        yield Compute(1)

    def main(ctx):
        yield Fork("C", "child")
        yield Fork("C", "child")

    program = Program("p")
    program.method(child, name="child")
    program.method(main, name="main")
    program.add_thread("M", "main")
    with pytest.raises(ProgramError):
        Executor(program).run()


def test_deadlock_detected():
    def a(ctx):
        yield Acquire(ctx.lock1)
        yield Compute(3)
        yield Acquire(ctx.lock2)

    def b(ctx):
        yield Acquire(ctx.lock2)
        yield Compute(3)
        yield Acquire(ctx.lock1)

    program = Program("deadlock")
    program.add_global_object("lock1")
    program.add_global_object("lock2")
    program.method(a, name="a")
    program.method(b, name="b")
    program.add_thread("A", "a")
    program.add_thread("B", "b")
    with pytest.raises(DeadlockError):
        run_program(program, RoundRobinScheduler(quantum=2))


def test_step_limit():
    def spin(ctx):
        while True:
            yield Compute(1)

    program = single_thread_program(spin)
    with pytest.raises(StepLimitExceeded):
        run_program(program, step_limit=100)


def test_release_without_ownership_raises():
    def body(ctx):
        obj = yield New("o")
        yield Release(obj)

    with pytest.raises(ProgramError):
        run_program(single_thread_program(body))


def test_reentrant_lock():
    def body(ctx):
        obj = yield New("o")
        yield Acquire(obj)
        yield Acquire(obj)
        yield Release(obj)
        yield Release(obj)

    run_program(single_thread_program(body))  # must not raise


def test_sync_accesses_reported_to_listeners():
    recorder = Recorder()

    def body(ctx):
        obj = yield New("o")
        yield Acquire(obj)
        yield Release(obj)

    program = single_thread_program(body)
    Executor(program, listeners=[recorder]).run()
    sync = [e for e in recorder.accesses if e.is_sync]
    # thread-start read, acquire read, release write, thread-end write
    kinds = [e.kind for e in sync]
    assert kinds == [
        AccessKind.READ,
        AccessKind.READ,
        AccessKind.WRITE,
        AccessKind.WRITE,
    ]


def test_sync_as_accesses_can_be_disabled():
    recorder = Recorder()

    def body(ctx):
        obj = yield New("o")
        yield Acquire(obj)
        yield Release(obj)

    program = single_thread_program(body)
    Executor(program, listeners=[recorder], sync_as_accesses=False).run()
    assert all(not e.is_sync for e in recorder.accesses)


def test_thread_lifecycle_events():
    recorder = Recorder()
    program = counter_program(threads=2, iterations=1)
    Executor(program, RoundRobinScheduler(), [recorder]).run()
    starts = {t for kind, t in recorder.threads if kind == "start"}
    ends = {t for kind, t in recorder.threads if kind == "end"}
    assert starts == ends == {"T1", "T2"}


def test_execution_result_counts():
    recorder = Recorder()
    program = counter_program(threads=2, iterations=5)
    result = Executor(program, RoundRobinScheduler(), [recorder]).run()
    assert result.access_count == len(recorder.accesses)
    assert result.sync_access_count == sum(1 for e in recorder.accesses if e.is_sync)
    assert result.program_access_count == (
        result.access_count - result.sync_access_count
    )
    assert result.steps > 0


def test_per_thread_ops_are_step_counts():
    """Regression: per_thread_ops used to report thread *ids*; it must
    report how many scheduler steps each thread actually ran."""

    class CountingScheduler(RoundRobinScheduler):
        def __init__(self):
            super().__init__()
            self.counts = {}

        def choose(self, runnable, step):
            chosen = super().choose(runnable, step)
            self.counts[chosen] = self.counts.get(chosen, 0) + 1
            return chosen

    scheduler = CountingScheduler()
    program = counter_program(threads=3, iterations=7)
    result = Executor(program, scheduler).run()
    assert result.per_thread_ops == scheduler.counts
    assert sum(result.per_thread_ops.values()) == result.steps
    assert set(result.per_thread_ops) == {"T1", "T2", "T3"}
    # distinct from thread ids (tids are 1..3; each thread runs far more)
    assert all(count > 3 for count in result.per_thread_ops.values())


def test_steps_per_second_throughput_counter():
    result = Executor(counter_program(threads=2, iterations=5)).run()
    assert result.steps_per_second > 0
    assert result.steps_per_second == result.steps / result.elapsed_seconds


def test_determinism_same_seed_same_trace():
    def trace(seed):
        recorder = Recorder()
        program = counter_program(threads=3, iterations=8)
        Executor(
            program, RandomScheduler(seed=seed, switch_prob=0.6), [recorder]
        ).run()
        return [(e.thread_name, e.fieldname, e.kind) for e in recorder.accesses]

    assert trace(7) == trace(7)
    assert trace(7) != trace(8)


def test_listeners_do_not_perturb_schedule():
    """Attaching analyses must not change the interleaving (this is what
    makes cross-checker comparisons on the same seed meaningful)."""

    def trace(listeners):
        recorder = Recorder()
        program = counter_program(threads=3, iterations=8)
        Executor(
            program,
            RandomScheduler(seed=3, switch_prob=0.6),
            list(listeners) + [recorder],
        ).run()
        return [(e.seq, e.thread_name, e.fieldname) for e in recorder.accesses]

    assert trace([]) == trace([ExecutionListener()])
