"""Scheduler policies."""

import pytest

from repro.errors import SchedulerError
from repro.runtime.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)


def drive(scheduler, runnable, steps):
    choices = []
    for step in range(steps):
        choices.append(scheduler.choose(runnable, step))
    return choices


class TestRoundRobin:
    def test_rotates_with_quantum_one(self):
        scheduler = RoundRobinScheduler(quantum=1)
        choices = drive(scheduler, ["A", "B", "C"], 6)
        assert choices == ["A", "B", "C", "A", "B", "C"]

    def test_quantum_runs_thread_repeatedly(self):
        scheduler = RoundRobinScheduler(quantum=3)
        choices = drive(scheduler, ["A", "B"], 8)
        assert choices == ["A", "A", "A", "B", "B", "B", "A", "A"]

    def test_skips_unrunnable_current(self):
        scheduler = RoundRobinScheduler(quantum=4)
        assert scheduler.choose(["A", "B"], 0) == "A"
        # A blocks; only B runnable
        assert scheduler.choose(["B"], 1) == "B"

    def test_invalid_quantum(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler(quantum=0)

    def test_reset(self):
        scheduler = RoundRobinScheduler(quantum=2)
        first = drive(scheduler, ["A", "B"], 4)
        scheduler.reset()
        assert drive(scheduler, ["A", "B"], 4) == first


class TestRandom:
    def test_deterministic_given_seed(self):
        a = drive(RandomScheduler(seed=3), ["A", "B", "C"], 50)
        b = drive(RandomScheduler(seed=3), ["A", "B", "C"], 50)
        assert a == b

    def test_different_seeds_differ(self):
        a = drive(RandomScheduler(seed=3), ["A", "B", "C"], 50)
        b = drive(RandomScheduler(seed=4), ["A", "B", "C"], 50)
        assert a != b

    def test_switch_prob_zero_sticks_to_thread(self):
        scheduler = RandomScheduler(seed=0, switch_prob=0.0)
        choices = drive(scheduler, ["A", "B"], 10)
        assert len(set(choices)) == 1

    def test_switch_prob_one_always_rerolls(self):
        scheduler = RandomScheduler(seed=0, switch_prob=1.0)
        choices = drive(scheduler, ["A", "B", "C"], 200)
        assert set(choices) == {"A", "B", "C"}

    def test_invalid_switch_prob(self):
        with pytest.raises(SchedulerError):
            RandomScheduler(switch_prob=1.5)

    def test_reset_restores_sequence(self):
        scheduler = RandomScheduler(seed=11, switch_prob=0.7)
        first = drive(scheduler, ["A", "B"], 30)
        scheduler.reset()
        assert drive(scheduler, ["A", "B"], 30) == first

    def test_chooses_runnable_after_current_blocks(self):
        scheduler = RandomScheduler(seed=1, switch_prob=0.0)
        first = scheduler.choose(["A", "B"], 0)
        others = [t for t in ["A", "B"] if t != first]
        assert scheduler.choose(others, 1) == others[0]


class TestScripted:
    def test_replays_script(self):
        scheduler = ScriptedScheduler(["B", "A", "B"])
        assert drive(scheduler, ["A", "B"], 3) == ["B", "A", "B"]
        assert scheduler.exhausted()

    def test_skips_unrunnable_entries(self):
        scheduler = ScriptedScheduler(["C", "B"])
        assert scheduler.choose(["A", "B"], 0) == "B"

    def test_falls_back_to_round_robin(self):
        scheduler = ScriptedScheduler(["A"])
        choices = drive(scheduler, ["A", "B"], 5)
        assert choices[0] == "A"
        assert set(choices[1:]) == {"A", "B"}

    def test_reset(self):
        scheduler = ScriptedScheduler(["B", "A"])
        drive(scheduler, ["A", "B"], 2)
        scheduler.reset()
        assert not scheduler.exhausted()
        assert scheduler.choose(["A", "B"], 0) == "B"
