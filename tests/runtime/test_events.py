"""Access events, sites, and addressing."""

from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap


def make_event(kind=AccessKind.READ, fieldname="f", is_array=False):
    heap = Heap()
    obj = heap.alloc("o")
    return AccessEvent(
        seq=1,
        thread_name="T",
        obj=obj,
        fieldname=fieldname,
        kind=kind,
        is_sync=False,
        is_array=is_array,
        site=Site("m", 0),
    )


def test_address_is_field_granular():
    event = make_event(fieldname="g")
    assert event.address == (event.obj.oid, "g")


def test_object_address_conflates_fields():
    a = make_event(fieldname="[0]", is_array=True)
    assert a.object_address == (a.obj.oid, "*")


def test_kind_predicates():
    assert make_event(AccessKind.READ).is_read()
    assert not make_event(AccessKind.READ).is_write()
    assert make_event(AccessKind.WRITE).is_write()


def test_site_string():
    assert str(Site("update", 3)) == "update@3"


def test_site_value_semantics():
    assert Site("m", 1) == Site("m", 1)
    assert Site("m", 1) != Site("m", 2)
    assert hash(Site("m", 1)) == hash(Site("m", 1))
    assert len({Site("m", 1), Site("m", 1), Site("n", 1)}) == 2


def test_events_are_slotted():
    """Hot-path structures carry no per-instance __dict__."""
    import pickle

    event = make_event()
    assert not hasattr(event, "__dict__")
    assert not hasattr(event.site, "__dict__")
    # equality/hash follow field values, and pickling round-trips
    clone = pickle.loads(pickle.dumps(event))
    assert clone.fieldname == event.fieldname
    assert clone.site == event.site
    assert clone.kind is event.kind
