"""Unit tests for the script-lowering pass (repro.runtime.lowering).

``lower_script`` compiles a script op list into the columnar
:class:`LoweredBody`; ``script_body`` wraps the same script into the
reference generator arm.  These tests pin the column layout, the
interning contracts (sites via ``intern_site``, addresses via the
executor-wide intern table), and the reference arm's op stream.
"""

import pytest

from repro.errors import ProgramError
from repro.runtime.events import intern_site
from repro.runtime.lowering import (
    BATCH_ENV,
    OP_AREAD,
    OP_AWRITE,
    OP_COMPUTE,
    OP_CONTROL,
    OP_READ,
    OP_WRITE,
    VAL_CONST,
    VAL_INC,
    batch_executor_enabled,
    lower_script,
    script_body,
)
from repro.runtime.ops import (
    Acquire,
    ArrayWrite,
    Invoke,
    Read,
    Release,
    Write,
)
from repro.runtime.program import Program


@pytest.fixture()
def heap():
    program = Program("lowering-test")
    objects = program.add_global_objects("o", 2)
    arr = program.add_global_array("a", 3)
    return objects, arr


def _script(objects, arr):
    o0, o1 = objects
    return [
        ("read", o0, "f0", "v"),
        ("write", o0, "f0", ("inc", "v", 2)),
        ("aread", arr, 1, None),
        ("awrite", arr, 2, ("const", 9)),
        ("compute", 3),
        ("acquire", o1),
        ("release", o1),
        ("invoke", "m0", ()),
    ]


def test_lower_script_columns(heap):
    objects, arr = heap
    o0, o1 = objects
    script = _script(objects, arr)
    body = lower_script(script, "m", {})

    assert body.length == len(script)
    assert list(body.codes) == [
        OP_READ, OP_WRITE, OP_AREAD, OP_AWRITE,
        OP_COMPUTE, OP_CONTROL, OP_CONTROL, OP_CONTROL,
    ]
    assert list(body.oids[:4]) == [o0.oid, o0.oid, arr.oid, arr.oid]
    assert body.objs[:4] == [o0, o0, arr, arr]
    # array accesses synthesize "[i]" field names, like ArrayRead does
    assert body.fields[:4] == ["f0", "f0", "[1]", "[2]"]
    assert list(body.array_indices[:4]) == [-1, -1, 1, 2]
    assert body.addresses[:4] == [
        (o0.oid, "f0"), (o0.oid, "f0"), (arr.oid, "[1]"), (arr.oid, "[2]"),
    ]
    # register allocation: "v" is register 0, read into and inc'd from
    assert body.dst_regs[0] == 0
    assert body.val_modes[1] == VAL_INC
    assert body.val_regs[1] == 0
    assert body.val_consts[1] == 2
    # discarded read destination
    assert body.dst_regs[2] == -1
    assert body.val_modes[3] == VAL_CONST
    assert body.val_consts[3] == 9
    assert body.nregs == 1
    # compute cost rides in val_consts
    assert body.val_consts[4] == 3
    # control ops are prebuilt frozen instances
    assert body.control_ops[5] == Acquire(o1)
    assert body.control_ops[6] == Release(o1)
    assert body.control_ops[7] == Invoke("m0", ())
    assert list(body.lock_ids[5:7]) == [o1.oid, o1.oid]


def test_lower_script_interns_sites_and_addresses(heap):
    objects, arr = heap
    script = _script(objects, arr)
    addr_intern = {}
    one = lower_script(script, "m", addr_intern)
    two = lower_script(script, "m", addr_intern)

    # sites come from the process-wide intern table shared with the
    # reference interpreter's event construction
    for pc in range(one.length):
        assert one.sites[pc] is intern_site("m", pc)
        assert one.sites[pc] is two.sites[pc]
        assert one.site_strs[pc] == f"m@{pc}"
    # addresses are interned executor-wide: both bodies share tuples
    for pc in range(4):
        assert one.addresses[pc] is two.addresses[pc]
    # the per-body side table dedupes (two f0 accesses, one entry)
    assert one.address_table == [
        (objects[0].oid, "f0"), (arr.oid, "[1]"), (arr.oid, "[2]"),
    ]
    assert one.field_table == ["f0", "[1]", "[2]"]


def test_lower_script_rejects_unknown_ops(heap):
    objects, _ = heap
    with pytest.raises(ProgramError):
        lower_script([("jump", 3)], "m", {})
    with pytest.raises(ProgramError):
        lower_script(
            [("write", objects[0], "f0", ("mul", "v", 2))], "m", {}
        )


def test_script_body_reference_arm_matches_script(heap):
    objects, arr = heap
    o0, _ = objects

    def script(ctx):
        return [
            ("read", o0, "f0", "v"),
            ("write", o0, "f0", ("inc", "v", 2)),
            ("awrite", arr, 1, ("reg", "v")),
        ]

    body = script_body(script)
    assert body._dc_script_fn is script

    gen = body(None)
    op = next(gen)
    assert op == Read(o0, "f0")
    op = gen.send(5)  # the read's value lands in register "v"
    assert op == Write(o0, "f0", 7)
    op = gen.send(None)
    assert op == ArrayWrite(arr, 1, 5)
    with pytest.raises(StopIteration):
        gen.send(None)


def test_batch_executor_enabled_env_parsing(monkeypatch):
    monkeypatch.delenv(BATCH_ENV, raising=False)
    assert batch_executor_enabled()
    for value in ("0", "false", "off", " OFF "):
        monkeypatch.setenv(BATCH_ENV, value)
        assert not batch_executor_enabled()
    for value in ("1", "true", "on", ""):
        monkeypatch.setenv(BATCH_ENV, value)
        assert batch_executor_enabled()
