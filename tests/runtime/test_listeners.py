"""Listener pipeline dispatch and ordering."""

from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap
from repro.runtime.listeners import ExecutionListener, ListenerPipeline


class Probe(ExecutionListener):
    def __init__(self, name, log):
        self.name = name
        self.log = log

    def on_thread_start(self, thread):
        self.log.append((self.name, "start", thread))

    def on_thread_end(self, thread):
        self.log.append((self.name, "end", thread))

    def on_method_enter(self, thread, method, depth):
        self.log.append((self.name, "enter", method, depth))

    def on_method_exit(self, thread, method, depth):
        self.log.append((self.name, "exit", method, depth))

    def on_access(self, event):
        self.log.append((self.name, "access", event.fieldname))

    def on_execution_end(self):
        self.log.append((self.name, "finish"))


def make_event():
    return AccessEvent(
        seq=1, thread_name="T", obj=Heap().alloc("o"), fieldname="f",
        kind=AccessKind.READ, is_sync=False, is_array=False, site=Site("m"),
    )


def test_dispatch_order_matches_registration():
    """Barrier order = registration order (Octet before ICD's logger)."""
    log = []
    pipeline = ListenerPipeline([Probe("a", log), Probe("b", log)])
    pipeline.on_access(make_event())
    assert [entry[0] for entry in log] == ["a", "b"]


def test_all_event_kinds_forwarded():
    log = []
    pipeline = ListenerPipeline([Probe("p", log)])
    pipeline.on_thread_start("T")
    pipeline.on_method_enter("T", "m", 1)
    pipeline.on_access(make_event())
    pipeline.on_method_exit("T", "m", 1)
    pipeline.on_thread_end("T")
    pipeline.on_execution_end()
    kinds = [entry[1] for entry in log]
    assert kinds == ["start", "enter", "access", "exit", "end", "finish"]


def test_add_after_construction():
    log = []
    pipeline = ListenerPipeline()
    pipeline.add(Probe("late", log))
    pipeline.on_thread_start("T")
    assert log == [("late", "start", "T")]


def test_base_listener_is_a_no_op():
    listener = ExecutionListener()
    listener.on_thread_start("T")
    listener.on_access(make_event())
    listener.on_execution_end()  # nothing raised


def test_on_access_fast_path_rebinds_as_listeners_are_added():
    """The pre-bound barrier: no-op with zero listeners, the listener's
    own bound method with one, fan-out with two or more — and add()
    must upgrade the binding each time."""
    log = []
    pipeline = ListenerPipeline()
    pipeline.on_access(make_event())  # no listeners: dropped, no error
    assert log == []

    first = Probe("a", log)
    pipeline.add(first)
    assert pipeline.on_access == first.on_access  # direct binding
    pipeline.on_access(make_event())
    assert [entry[0] for entry in log] == ["a"]

    log.clear()
    pipeline.add(Probe("b", log))
    pipeline.on_access(make_event())
    assert [entry[0] for entry in log] == ["a", "b"]


class Fused(ExecutionListener):
    """A listener supplying a custom fused access barrier."""

    def __init__(self, log):
        self.log = log

    def on_access(self, event):
        self.log.append(("unfused", event.fieldname))

    def access_barrier(self):
        def fused(event):
            self.log.append(("fused", event.fieldname))

        return fused


def test_single_listener_binds_the_fused_barrier():
    """With one listener the pipeline dispatches its access_barrier()
    closure — ICD's fused ICD+Octet call — not plain on_access."""
    log = []
    pipeline = ListenerPipeline([Fused(log)])
    pipeline.on_access(make_event())
    assert log == [("fused", "f")]


def test_fan_out_uses_each_listeners_barrier():
    log = []
    pipeline = ListenerPipeline([Fused(log), Probe("p", log)])
    pipeline.on_access(make_event())
    assert log == [("fused", "f"), ("p", "access", "f")]


def test_default_access_barrier_is_on_access():
    listener = ExecutionListener()
    assert listener.access_barrier() == listener.on_access


def test_single_listener_fast_path_preserves_event_identity():
    seen = []

    class Identity(ExecutionListener):
        def on_access(self, event):
            seen.append(event)

    pipeline = ListenerPipeline([Identity()])
    event = make_event()
    pipeline.on_access(event)
    assert seen == [event]
