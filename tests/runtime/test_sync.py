"""Monitor semantics: locks, wait sets, notify."""

import pytest

from repro.errors import ProgramError
from repro.runtime.executor import run_program
from repro.runtime.heap import Heap
from repro.runtime.ops import (
    Acquire,
    Compute,
    Notify,
    Read,
    Release,
    Wait,
    Write,
)
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler
from repro.runtime.sync import LockTable


@pytest.fixture
def table():
    return LockTable()


@pytest.fixture
def obj():
    return Heap().alloc("o")


class TestLockTable:
    def test_acquire_free(self, table, obj):
        assert table.try_acquire("T1", obj)
        assert table.owner_of(obj) == "T1"

    def test_acquire_held_fails(self, table, obj):
        table.try_acquire("T1", obj)
        assert not table.try_acquire("T2", obj)

    def test_reentrant_depth(self, table, obj):
        table.try_acquire("T1", obj)
        table.try_acquire("T1", obj)
        assert not table.release("T1", obj)
        assert table.release("T1", obj)
        assert table.owner_of(obj) is None

    def test_release_not_owner_raises(self, table, obj):
        table.try_acquire("T1", obj)
        with pytest.raises(ProgramError):
            table.release("T2", obj)

    def test_release_fully_returns_depth(self, table, obj):
        table.try_acquire("T1", obj)
        table.try_acquire("T1", obj)
        table.try_acquire("T1", obj)
        assert table.release_fully("T1", obj) == 3
        assert table.owner_of(obj) is None

    def test_reacquire_with_saved_depth(self, table, obj):
        table.try_acquire("T1", obj, depth=3)
        assert not table.release("T1", obj)
        assert not table.release("T1", obj)
        assert table.release("T1", obj)

    def test_notify_wakes_one_in_order(self, table, obj):
        table.add_waiter("T2", obj)
        table.add_waiter("T1", obj)
        assert table.notify(obj, wake_all=False) == ["T1"]
        assert table.waiters(obj) == ["T2"]

    def test_notify_all(self, table, obj):
        table.add_waiter("T2", obj)
        table.add_waiter("T1", obj)
        assert table.notify(obj, wake_all=True) == ["T1", "T2"]
        assert table.waiters(obj) == []

    def test_notify_empty(self, table, obj):
        assert table.notify(obj, wake_all=True) == []

    def test_require_owner(self, table, obj):
        with pytest.raises(ProgramError):
            table.require_owner("T1", obj, "wait")


class TestWaitNotify:
    def _producer_consumer(self, rounds=3):
        program = Program("pc")
        box = program.add_global_object("box")
        consumed = []

        def producer(ctx):
            for i in range(rounds):
                yield Acquire(box)
                count = yield Read(box, "count")
                yield Write(box, "count", (count or 0) + 1)
                yield Notify(box, True)
                yield Release(box)
                yield Compute(2)

        def consumer(ctx):
            for _ in range(rounds):
                yield Acquire(box)
                count = yield Read(box, "count")
                while not count:
                    yield Wait(box)
                    count = yield Read(box, "count")
                yield Write(box, "count", count - 1)
                consumed.append(count)
                yield Release(box)

        program.method(producer, name="producer", interrupting=True)
        program.method(consumer, name="consumer", interrupting=True)
        program.add_thread("P", "producer")
        program.add_thread("C", "consumer")
        return program, consumed

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_producer_consumer_terminates(self, seed):
        program, consumed = self._producer_consumer()
        run_program(program, RandomScheduler(seed=seed, switch_prob=0.6))
        assert len(consumed) == 3

    def test_wait_without_monitor_raises(self):
        program = Program("bad")
        box = program.add_global_object("box")

        def body(ctx):
            yield Wait(box)

        program.method(body, name="body")
        program.add_thread("T", "body")
        with pytest.raises(ProgramError):
            run_program(program)

    def test_notify_without_monitor_raises(self):
        program = Program("bad")
        box = program.add_global_object("box")

        def body(ctx):
            yield Notify(box)

        program.method(body, name="body")
        program.add_thread("T", "body")
        with pytest.raises(ProgramError):
            run_program(program)

    def test_wait_restores_reentrant_depth(self):
        program = Program("depth")
        box = program.add_global_object("box")
        checks = []

        def waiter(ctx):
            yield Acquire(box)
            yield Acquire(box)
            yield Wait(box)
            # both re-entry levels must have been restored
            yield Release(box)
            yield Release(box)
            checks.append("ok")

        def notifier(ctx):
            yield Compute(3)
            yield Acquire(box)
            yield Notify(box)
            yield Release(box)

        program.method(waiter, name="waiter", interrupting=True)
        program.method(notifier, name="notifier", interrupting=True)
        program.add_thread("W", "waiter")
        program.add_thread("N", "notifier")
        run_program(program, RoundRobinScheduler())
        assert checks == ["ok"]

    def test_contended_lock_mutual_exclusion(self):
        program = Program("mutex")
        shared = program.add_global_object("shared")

        def body(ctx):
            for _ in range(15):
                yield Acquire(shared)
                value = yield Read(shared, "v")
                yield Compute(2)
                yield Write(shared, "v", (value or 0) + 1)
                yield Release(shared)

        program.method(body, name="body")
        for name in ("A", "B", "C"):
            program.add_thread(name, "body")
        run_program(program, RandomScheduler(seed=2, switch_prob=0.9))
        assert shared.fields["v"] == 45
