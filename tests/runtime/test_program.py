"""Program model: methods, globals, entry points, validation."""

import pytest

from repro.errors import ProgramError
from repro.runtime.heap import Heap, SharedArray, SharedObject
from repro.runtime.ops import Compute
from repro.runtime.program import MethodDef, Program


def noop(ctx):
    yield Compute(1)


class TestMethods:
    def test_decorator_registers_by_function_name(self):
        program = Program("p")

        @program.method
        def my_method(ctx):
            yield Compute(1)

        assert "my_method" in program.methods

    def test_decorator_with_name_and_interrupting(self):
        program = Program("p")

        @program.method(name="custom", interrupting=True)
        def body(ctx):
            yield Compute(1)

        assert program.lookup("custom").interrupting
        assert program.interrupting_methods() == ["custom"]

    def test_duplicate_method_rejected(self):
        program = Program("p")
        program.add_method(MethodDef("m", noop))
        with pytest.raises(ProgramError):
            program.add_method(MethodDef("m", noop))

    def test_lookup_unknown_raises(self):
        with pytest.raises(ProgramError):
            Program("p").lookup("ghost")


class TestThreadsAndEntries:
    def test_duplicate_thread_rejected(self):
        program = Program("p")
        program.add_method(MethodDef("m", noop))
        program.add_thread("T", "m")
        with pytest.raises(ProgramError):
            program.add_thread("T", "m")

    def test_entry_methods_include_marked(self):
        program = Program("p")
        program.add_method(MethodDef("m", noop))
        program.add_method(MethodDef("w", noop))
        program.add_thread("T", "m")
        program.mark_entry("w")
        assert program.entry_methods() == ["m", "w"]

    def test_validate_rejects_unknown_entry(self):
        program = Program("p")
        program.add_thread("T", "ghost")
        with pytest.raises(ProgramError):
            program.validate()

    def test_validate_rejects_no_threads(self):
        with pytest.raises(ProgramError):
            Program("p").validate()


class TestGlobals:
    def test_global_object_allocated_and_reachable(self):
        program = Program("p")
        obj = program.add_global_object("cfg")
        ctx = program.make_context()
        assert ctx.cfg is obj
        assert isinstance(obj, SharedObject)

    def test_global_array(self):
        program = Program("p")
        arr = program.add_global_array("buf", 8, fill=1)
        assert isinstance(arr, SharedArray)
        assert len(arr) == 8
        assert program.make_context().buf is arr

    def test_global_objects_list(self):
        program = Program("p")
        objs = program.add_global_objects("pool", 3)
        assert len(objs) == 3
        assert program.make_context().pool == objs

    def test_duplicate_global_rejected(self):
        program = Program("p")
        program.add_global("x", 1)
        with pytest.raises(ProgramError):
            program.add_global("x", 2)

    def test_unknown_global_attribute_error(self):
        program = Program("p")
        program.add_global("known", 1)
        ctx = program.make_context()
        with pytest.raises(AttributeError, match="known"):
            ctx.missing

    def test_context_lists_global_names(self):
        program = Program("p")
        program.add_global("b", 1)
        program.add_global("a", 2)
        assert program.make_context().global_names() == ["a", "b"]


class TestHeap:
    def test_alloc_assigns_unique_ids(self):
        heap = Heap()
        a = heap.alloc("a")
        b = heap.alloc("b")
        assert a.oid != b.oid
        assert heap.get(a.oid) is a

    def test_len_and_iter(self):
        heap = Heap()
        heap.alloc("a")
        heap.alloc_array("arr", 4)
        assert len(heap) == 2
        assert len(list(heap)) == 2

    def test_field_defaults_to_zero(self):
        heap = Heap()
        obj = heap.alloc("o")
        assert heap.read_field(obj, "f") == 0
        heap.write_field(obj, "f", "v")
        assert heap.read_field(obj, "f") == "v"

    def test_array_bounds_checked(self):
        heap = Heap()
        arr = heap.alloc_array("a", 2)
        with pytest.raises(IndexError):
            heap.read_element(arr, 5)

    def test_objects_hash_by_identity(self):
        heap = Heap()
        a, b = heap.alloc("x"), heap.alloc("x")
        assert a != b
        assert len({a, b}) == 2
