"""Runtime views used by the coordination protocol."""

from repro.runtime.executor import Executor
from repro.runtime.listeners import ExecutionListener
from repro.runtime.ops import Acquire, Compute, Release
from repro.runtime.program import Program
from repro.runtime.scheduler import RoundRobinScheduler
from repro.runtime.view import ExecutorView, NullView


def test_null_view_defaults():
    view = NullView()
    assert not view.is_thread_blocked("T")
    assert not view.holds_any_lock("T")


class Sampler(ExecutionListener):
    """Samples the view while the other thread is blocked on a lock."""

    def __init__(self):
        self.view = None
        self.samples = []

    def on_access(self, event):
        if self.view is not None:
            self.samples.append(
                (
                    event.thread_name,
                    self.view.is_thread_blocked("A"),
                    self.view.is_thread_blocked("B"),
                    self.view.holds_any_lock("A"),
                    self.view.holds_any_lock("B"),
                )
            )


def test_executor_view_sees_blocking_and_locks():
    program = Program("view")
    lock = program.add_global_object("lock")

    def holder(ctx):
        yield Acquire(lock)
        yield Compute(6)
        yield Release(lock)

    def contender(ctx):
        yield Compute(2)
        yield Acquire(lock)
        yield Release(lock)

    program.method(holder, name="holder")
    program.method(contender, name="contender")
    program.add_thread("A", "holder")
    program.add_thread("B", "contender")

    sampler = Sampler()
    executor = Executor(program, RoundRobinScheduler(), [sampler])
    sampler.view = ExecutorView(executor)
    executor.run()

    # at some point A held the lock while B was blocked on it
    assert any(
        holds_a and blocked_b
        for (_t, _ba, blocked_b, holds_a, _hb) in sampler.samples
    )
    # and the lock was eventually released everywhere
    assert not executor.locks.owner_of(lock)
