"""The operation vocabulary."""

from repro.runtime import ops


def test_operations_are_immutable():
    read = ops.Read(None, "f")
    try:
        read.fieldname = "g"
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_defaults():
    assert ops.Compute().cost == 1
    assert ops.Notify(None).wake_all is False
    assert ops.Invoke("m").args == ()
    assert ops.Fork("T", "m").args == ()
    assert ops.NewArray().length == 0
    assert ops.New().label == "obj"


def test_groups_cover_vocabulary():
    assert ops.Read in ops.MemoryOp
    assert ops.ArrayWrite in ops.MemoryOp
    assert ops.Acquire in ops.SyncOp
    assert ops.Wait in ops.SyncOp
    for op in ops.MemoryOp + ops.SyncOp:
        assert op in ops.Operation
    assert ops.Invoke in ops.Operation
    assert ops.Compute in ops.Operation


def test_equality_is_structural():
    heap_obj = object()
    assert ops.Read(heap_obj, "f") == ops.Read(heap_obj, "f")
    assert ops.Read(heap_obj, "f") != ops.Read(heap_obj, "g")
