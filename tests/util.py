"""Shared helpers for the test suite: small program factories."""

from __future__ import annotations

from typing import Callable, Optional

from repro.runtime.ops import (
    Acquire,
    Compute,
    Fork,
    Invoke,
    Join,
    Read,
    Release,
    Write,
)
from repro.runtime.program import Program
from repro.spec.specification import AtomicitySpecification


def counter_program(
    *,
    threads: int = 2,
    iterations: int = 10,
    locked: bool = False,
    gap: int = 2,
) -> Program:
    """Workers repeatedly invoke a read-modify-write on one counter.

    With ``locked=False`` the RMW is a textbook atomicity violation;
    with ``locked=True`` it is properly synchronized.
    """
    program = Program("counter")
    counter = program.add_global_object("counter")

    def rmw(ctx):
        if locked:
            yield Acquire(counter)
        value = yield Read(counter, "value")
        yield Compute(gap)
        yield Write(counter, "value", (value or 0) + 1)
        if locked:
            yield Release(counter)

    program.method(rmw, name="rmw")

    def worker(ctx):
        for _ in range(iterations):
            yield Invoke("rmw")

    program.method(worker, name="worker")
    program.mark_entry("worker")
    for i in range(threads):
        program.add_thread(f"T{i + 1}", "worker")
    return program


def fork_join_program(body: Optional[Callable] = None, workers: int = 2) -> Program:
    """A main thread forks workers running ``body`` and joins them."""
    program = Program("forkjoin")
    shared = program.add_global_object("shared")

    def default_body(ctx):
        value = yield Read(shared, "x")
        yield Write(shared, "x", (value or 0) + 1)

    program.method(body or default_body, name="task")

    def main(ctx):
        for i in range(workers):
            yield Fork(f"W{i}", "task")
        for i in range(workers):
            yield Join(f"W{i}")

    program.method(main, name="main")
    program.add_thread("main", "main")
    program.mark_entry("task")
    return program


def spec_for(program: Program) -> AtomicitySpecification:
    """The initial specification (entry/interrupting methods excluded)."""
    return AtomicitySpecification.initial(program)


def two_thread_program(body_a, body_b, name: str = "pair") -> Program:
    """Two threads running distinct generator bodies ``body_a``/``body_b``.

    Bodies take (ctx) and are registered as entry methods, so their
    accesses are unary unless they invoke atomic methods.
    """
    program = Program(name)

    program.method(body_a, name="body_a")
    program.method(body_b, name="body_b")
    program.add_thread("A", "body_a")
    program.add_thread("B", "body_b")
    program.mark_entry("body_a")
    program.mark_entry("body_b")
    return program
