"""Vector-clock backend: detection, knobs, GC, fused-path identity."""

import pytest

from repro.errors import OutOfMemoryBudget
from repro.runtime.ops import Compute, Invoke, Read, Write
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler, ScriptedScheduler
from repro.vc.checker import VcChecker
from repro.velodrome.checker import VelodromeChecker

from tests.util import counter_program, spec_for

def scheduler(seed=1):
    return RandomScheduler(seed=seed, switch_prob=0.7)


class TestDetection:
    def test_detects_split_rmw(self):
        program = counter_program(threads=2, iterations=12)
        result = VcChecker(spec_for(program)).run(program, scheduler())
        assert result.blamed_methods == {"rmw"}
        assert result.stats.cycles_found > 0

    def test_clean_locked_program(self):
        program = counter_program(threads=2, iterations=12, locked=True)
        result = VcChecker(spec_for(program)).run(program, scheduler())
        assert result.blamed_methods == set()

    def test_blames_overlapping_transaction(self):
        """The mixed intra/cross-edge cycle: B overlaps two of A's
        transactions; the program-order leg lives in A's clock chain."""
        program = Program("overlap")
        x = program.add_global_object("x")
        y = program.add_global_object("y")

        def a_body(ctx):
            yield Invoke("a_read_x")
            yield Invoke("a_write_y")

        def a_read_x(ctx):
            yield Read(x, "f")

        def a_write_y(ctx):
            yield Write(y, "f", 1)

        def b_whole(ctx):
            yield Write(x, "f", 2)       # before A reads x
            yield Compute(30)
            yield Read(y, "f")           # after A writes y

        def b_body(ctx):
            yield Invoke("b_whole")

        program.method(a_body, name="a_body")
        program.method(a_read_x, name="a_read_x")
        program.method(a_write_y, name="a_write_y")
        program.method(b_whole, name="b_whole")
        program.method(b_body, name="b_body")
        program.add_thread("A", "a_body")
        program.add_thread("B", "b_body")
        program.mark_entry("a_body")
        program.mark_entry("b_body")

        script = ["B", "B", "B", "B"] + ["A"] * 40 + ["B"] * 40
        result = VcChecker(spec_for(program)).run(
            program, ScriptedScheduler(script)
        )
        assert result.blamed_methods == {"b_whole"}

    def test_linear_time_no_graph_search(self):
        """The whole point: cycle checks are clock probes, so their
        count is bounded by the (deduplicated) edge count."""
        program = counter_program(threads=3, iterations=20)
        result = VcChecker(spec_for(program)).run(program, scheduler())
        assert result.stats.cycle_checks == result.stats.edges


class TestSyncEdges:
    def test_sync_accesses_skipped_by_default(self):
        program = counter_program(threads=2, iterations=8, locked=True)
        checker = VcChecker(spec_for(program))
        checker.run(program, scheduler())
        assert checker.stats.sync_accesses_skipped > 0

    def test_sync_edges_mode_counts_them(self):
        program = counter_program(threads=2, iterations=8, locked=True)
        checker = VcChecker(spec_for(program), sync_edges=True)
        checker.run(program, scheduler())
        assert checker.stats.sync_accesses_skipped == 0

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_sync_edges_mode_matches_velodrome(self, seed):
        """With sync ordering on, verdicts are Velodrome's."""
        program_v = counter_program(threads=3, iterations=15, locked=True)
        velodrome = VelodromeChecker(spec_for(program_v)).run(
            program_v, scheduler(seed=seed)
        )
        program_c = counter_program(threads=3, iterations=15, locked=True)
        vc = VcChecker(spec_for(program_c), sync_edges=True).run(
            program_c, scheduler(seed=seed)
        )
        assert vc.blamed_methods == velodrome.blamed_methods


class TestFilters:
    def test_monitor_regular_filter(self):
        program = counter_program(threads=2, iterations=8)
        checker = VcChecker(spec_for(program), monitor_regular=lambda m: False)
        result = checker.run(program, scheduler())
        assert result.tx_stats.regular_transactions == 0
        assert result.tx_stats.unmonitored_transactions > 0

    def test_monitor_unary_disabled(self):
        program = counter_program(threads=2, iterations=8)
        checker = VcChecker(spec_for(program), monitor_unary=False)
        result = checker.run(program, scheduler())
        assert result.tx_stats.unary_accesses == 0

    def test_arrays_skipped_by_default(self):
        from repro.runtime.ops import ArrayRead, ArrayWrite

        program = Program("arr")
        arr = program.add_global_array("arr", 4)

        def body(ctx):
            for i in range(4):
                value = yield ArrayRead(arr, i)
                yield ArrayWrite(arr, i, (value or 0) + 1)

        program.method(body, name="body")
        program.add_thread("A", "body")
        program.add_thread("B", "body")
        program.mark_entry("body")
        checker = VcChecker(spec_for(program))
        result = checker.run(program, scheduler())
        assert result.stats.array_accesses_skipped > 0


class TestGcAndBudget:
    def test_gc_preserves_detection(self):
        def blamed(interval):
            program = counter_program(threads=3, iterations=20)
            checker = VcChecker(spec_for(program), gc_interval=interval)
            return checker.run(program, scheduler(seed=5)).blamed_methods

        assert blamed(None) == blamed(4)

    def test_clock_states_swept_with_transactions(self):
        program = counter_program(threads=2, iterations=30)
        checker = VcChecker(spec_for(program), gc_interval=4)
        checker.run(program, scheduler())
        assert checker.collector.stats.transactions_collected > 0
        live = {t.tx_id for t in checker.tx_manager.all_transactions}
        assert set(checker._states) <= live

    def test_memory_budget(self):
        program = counter_program(threads=2, iterations=100)
        checker = VcChecker(
            spec_for(program), memory_budget=5, gc_interval=None
        )
        with pytest.raises(OutOfMemoryBudget):
            checker.run(program, scheduler())


def _rereading_program():
    """Transactions that re-touch fields they already own: the shape
    the fused barrier's no-op predicate exists for."""
    program = Program("reread")
    x = program.add_global_object("x")

    def churn(ctx):
        total = 0
        for _ in range(4):
            total = (yield Read(x, "f")) or 0
        yield Write(x, "f", total + 1)
        yield Write(x, "f", total + 2)

    def body(ctx):
        for _ in range(10):
            yield Invoke("churn")

    program.method(churn, name="churn")
    program.method(body, name="body")
    for name in ("A", "B", "C"):
        program.add_thread(name, "body")
    program.mark_entry("body")
    return program


class TestFusedBarrier:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_fused_matches_reference(self, seed):
        """The fused closure's no-op fast path must not change any
        analysis-visible output."""
        program_f = _rereading_program()
        fused = VcChecker(spec_for(program_f), fastpath=True)
        fused_result = fused.run(program_f, scheduler(seed=seed))
        program_r = _rereading_program()
        reference = VcChecker(spec_for(program_r), fastpath=False)
        reference_result = reference.run(program_r, scheduler(seed=seed))
        assert fused_result.blamed_methods == reference_result.blamed_methods
        for name in ("edges", "cycles_found", "cycle_checks", "clock_joins"):
            assert getattr(fused_result.stats, name) == getattr(
                reference_result.stats, name
            ), name
        assert fused_result.stats.fastpath_hits > 0
        assert reference_result.stats.fastpath_hits == 0
        # fast-path hits are exactly the no-metadata-change accesses
        assert (
            fused_result.stats.instrumented_accesses
            == reference_result.stats.instrumented_accesses
        )


class TestAgreementWithDoubleChecker:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_same_schedule_same_violations(self, seed):
        """On pure data-conflict programs the vc backend must agree
        with the two-pass ICD+PCD pipeline."""
        from repro.core.doublechecker import DoubleChecker

        program_c = counter_program(threads=3, iterations=15)
        vc = VcChecker(spec_for(program_c)).run(program_c, scheduler(seed=seed))
        program_d = counter_program(threads=3, iterations=15)
        double = DoubleChecker(spec_for(program_d)).run_single(
            program_d, scheduler(seed=seed)
        )
        assert vc.blamed_methods == double.blamed_methods
