"""``repro obs analyze``: trace validation and critical-path report."""

import json

import pytest

from repro.obs.analyze import (
    critical_path_report,
    main,
    render_report,
    validate_trace,
)


def _span(name, pid, ts_us, dur_us, **extra):
    entry = {"name": name, "cat": "phase", "ph": "X",
             "ts": ts_us, "dur": dur_us, "pid": pid, "tid": pid}
    entry.update(extra)
    return entry


def _meta(pid, label):
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": pid,
            "args": {"name": label}}


def _flow(name, ph, ts_us, flow_id, pid):
    entry = {"name": name, "cat": "flow", "ph": ph, "ts": ts_us,
             "id": flow_id, "pid": pid, "tid": pid}
    if ph == "f":
        entry["bp"] = "e"
    return entry


def _synthetic_trace():
    """Coordinator (pid 1) sends two chunks to an analyzer (pid 2),
    which hands a PCD job to a log shard (pid 3).  Wall = 1.0s."""
    return {
        "traceEvents": [
            _meta(1, "coordinator"),
            _meta(2, "shard-analyzer"),
            _meta(3, "shard-log-0"),
            # coordinator: a 1.0s run containing a 0.6s execute span
            _span("shard.execute", 1, 0, 1_000_000),
            _span("executor.quantum", 1, 0, 600_000),
            # analyzer: two chunks
            _span("shard.analyzer.run", 2, 50_000, 900_000),
            _span("shard.analyzer.chunk", 2, 100_000, 200_000),
            _span("shard.analyzer.chunk", 2, 400_000, 100_000),
            # log shard: one job
            _span("shard.pcd.job", 3, 600_000, 300_000),
            # flow arrows: chunk 0 -> job 0 forms a 2-hop chain
            _flow("shard.chunk", "s", 10_000, 0, 1),
            _flow("shard.chunk", "f", 100_000, 0, 2),
            _flow("shard.chunk", "s", 350_000, 1, 1),
            _flow("shard.chunk", "f", 400_000, 1, 2),
            _flow("shard.job", "s", 500_000, 0, 2),
            _flow("shard.job", "f", 600_000, 0, 3),
        ],
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": "feedc0ffee00abcd"},
    }


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_validate_accepts_synthetic_trace():
    assert validate_trace(_synthetic_trace()) == []


def test_validate_rejects_non_object():
    assert validate_trace([1, 2]) != []
    assert validate_trace({"notTraceEvents": []}) != []


def test_validate_rejects_malformed_events():
    assert validate_trace({"traceEvents": [{"ph": "Q"}]}) != []
    # X without dur
    bad = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0, "pid": 1},
    ]}
    assert any("dur" in e for e in validate_trace(bad))
    # flow without id
    bad = {"traceEvents": [
        {"name": "a", "ph": "s", "ts": 0, "pid": 1},
    ]}
    assert any("id" in e for e in validate_trace(bad))


# ----------------------------------------------------------------------
# critical-path report
# ----------------------------------------------------------------------
def test_report_wall_and_coverage():
    report = critical_path_report(_synthetic_trace())
    assert report["trace_id"] == "feedc0ffee00abcd"
    assert report["wall_seconds"] == pytest.approx(1.0)
    # the coordinator's 1.0s span covers the whole run
    assert report["coverage_percent"] == pytest.approx(100.0)


def test_report_self_time_subtracts_children():
    report = critical_path_report(_synthetic_trace())
    stages = {s["name"]: s for s in report["stages"]}
    # shard.execute (1.0s) minus the nested 0.6s quantum = 0.4s self
    assert stages["shard.execute"]["self_seconds"] == pytest.approx(0.4)
    assert stages["executor.quantum"]["self_seconds"] == pytest.approx(0.6)
    # analyzer run (0.9s) minus its two chunks (0.3s) = 0.6s self
    assert stages["shard.analyzer.run"]["self_seconds"] == pytest.approx(0.6)
    assert stages["shard.analyzer.chunk"]["self_seconds"] == pytest.approx(0.3)
    assert stages["shard.analyzer.chunk"]["count"] == 2


def test_report_per_process_busy():
    report = critical_path_report(_synthetic_trace())
    busy = {p["label"]: p["busy_seconds"] for p in report["processes"]}
    assert busy["coordinator"] == pytest.approx(1.0)
    assert busy["shard-analyzer"] == pytest.approx(0.9)
    assert busy["shard-log-0"] == pytest.approx(0.3)


def test_report_blocking_chain_crosses_processes():
    report = critical_path_report(_synthetic_trace())
    chain = report["blocking_chain"]
    # chunk 0 (0.09s) -> chunk 1 (0.05s) -> job 0 (0.1s) chains in ts
    # order; the DP picks the highest-latency compatible sequence
    assert chain["hops"] == 3
    assert chain["latency_seconds"] == pytest.approx(0.24)
    assert [hop["name"] for hop in chain["path"]] == [
        "shard.chunk", "shard.chunk", "shard.job",
    ]
    assert chain["path"][-1]["from_pid"] == 2
    assert chain["path"][-1]["to_pid"] == 3


def test_report_with_metrics_tables_and_suggestion():
    metrics = {
        "histograms": {
            "shard.stall.analyzer.get.seconds":
                {"count": 4, "total": 0.5, "min": 0.1, "max": 0.2},
            "shard.queue.c2a.depth":
                {"count": 2, "total": 3.0, "min": 1.0, "max": 2.0},
            "shard.cpu.analyzer.seconds":
                {"count": 1, "total": 0.8, "min": 0.8, "max": 0.8},
            "unrelated.seconds":
                {"count": 1, "total": 1.0, "min": 1.0, "max": 1.0},
        }
    }
    report = critical_path_report(_synthetic_trace(), metrics)
    assert [r["name"] for r in report["stalls"]] == [
        "shard.stall.analyzer.get.seconds"
    ]
    assert [r["name"] for r in report["queues"]] == ["shard.queue.c2a.depth"]
    assert [r["name"] for r in report["cpu"]] == ["shard.cpu.analyzer.seconds"]
    # stall total (0.5s) exceeds 25% of wall -> suggestion flags it
    assert "suggested next bottleneck" in report["suggestion"]
    assert "shard.stall.analyzer.get.seconds" in report["suggestion"]
    text = render_report(report)
    assert "Critical path" in text
    assert "Per-stage attribution" in text
    assert "Longest blocking chain" in text


def test_report_empty_trace():
    report = critical_path_report({"traceEvents": []})
    assert report["wall_seconds"] == 0.0
    assert report["stages"] == []
    assert report["blocking_chain"]["hops"] == 0
    assert "no spans recorded" in report["suggestion"]
    # renders without dividing by zero
    assert "Critical path" in render_report(report)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_cli_text_report(tmp_path, capsys):
    trace = _write(tmp_path, "t.json", _synthetic_trace())
    assert main(["analyze", trace]) == 0
    out = capsys.readouterr().out
    assert "Critical path" in out
    assert "suggested next bottleneck" in out


def test_cli_json_report_with_metrics(tmp_path, capsys):
    trace = _write(tmp_path, "t.json", _synthetic_trace())
    metrics = _write(tmp_path, "m.json", {"histograms": {}})
    # the leading "analyze" token is optional (python -m spelling)
    assert main([trace, "--metrics", metrics, "--json", "--top", "2"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["trace_id"] == "feedc0ffee00abcd"
    assert len(report["top_spans"]) == 2


def test_cli_missing_trace_exits_2(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "absent.json")]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_cli_invalid_trace_exits_2(tmp_path, capsys):
    trace = _write(tmp_path, "bad.json", {"traceEvents": [{"ph": "Q"}]})
    assert main(["analyze", trace]) == 2
    assert "schema validation" in capsys.readouterr().err


def test_cli_unreadable_metrics_exits_2(tmp_path, capsys):
    trace = _write(tmp_path, "t.json", _synthetic_trace())
    assert main([trace, "--metrics", str(tmp_path / "nope.json")]) == 2
    assert "cannot read metrics" in capsys.readouterr().err


def test_cli_dispatch_from_experiments_entry_point(tmp_path, capsys):
    from repro.harness.cli import main as cli_main

    trace = _write(tmp_path, "t.json", _synthetic_trace())
    assert cli_main(["obs", "analyze", trace]) == 0
    assert "Critical path" in capsys.readouterr().out
