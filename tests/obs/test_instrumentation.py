"""End-to-end instrumentation: registry counters must byte-match the
legacy ``*Stats`` dataclasses after a checker run (the acceptance
criterion for the telemetry layer, and the satellite-1 drift fix for
``engine_search_visits``)."""

import dataclasses

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.harness import runner
from repro.obs.registry import (
    MetricsRegistry,
    MODE_FULL,
    recorder,
    use_registry,
)
from repro.velodrome.checker import VelodromeChecker
from repro.workloads import build

WORKLOAD = "hedc"


@pytest.fixture(autouse=True)
def restore_recorder():
    previous = recorder()
    yield
    use_registry(previous)


@pytest.fixture
def registry():
    reg = MetricsRegistry(MODE_FULL)
    previous = use_registry(reg)
    yield reg
    use_registry(previous)


def _assert_stats_match(counters, prefix, stats, skip=()):
    """Every published int field of ``stats`` must byte-match its
    counter; dict fields must match key-wise."""
    checked = 0
    for field in dataclasses.fields(stats):
        if field.name in skip:
            continue
        value = getattr(stats, field.name)
        if isinstance(value, bool):
            continue
        if isinstance(value, int):
            assert counters.get(f"{prefix}.{field.name}", 0) == value, (
                f"{prefix}.{field.name}"
            )
            checked += 1
        elif isinstance(value, dict):
            for key, entry in value.items():
                if isinstance(entry, int) and not isinstance(entry, bool):
                    assert counters.get(f"{prefix}.{field.name}.{key}", 0) == entry
                    checked += 1
    assert checked, f"no integer fields published for {prefix}"


def test_single_run_counters_byte_match_legacy_stats(registry):
    spec = runner.initial_spec(WORKLOAD)
    result = runner.run_single(WORKLOAD, spec, seed=0)
    counters = registry.snapshot()["counters"]

    _assert_stats_match(counters, "icd", result.icd_stats)
    _assert_stats_match(counters, "octet", result.octet_stats)
    _assert_stats_match(counters, "transactions", result.tx_stats)
    _assert_stats_match(
        counters, "gc", result.gc_stats,
        skip=("peak_live_transactions", "peak_live_log_entries"),
    )
    _assert_stats_match(counters, "pcd", result.pcd_stats)

    # the satellite-1 metric: sourced from the linked engine stats, so
    # the property, the engine counter, and the registry cannot drift
    assert (
        counters["icd.engine_search_visits"]
        == result.icd_stats.engine_search_visits
        == counters.get("icd.engine.search_visits", 0)
    )

    # executor-level counters reflect the same execution
    assert counters["executor.steps"] == result.execution.steps
    assert counters["executor.accesses"] == result.execution.access_count
    assert counters["executor.runs"] == 1
    assert counters["executor.threads"] == len(result.execution.thread_names)

    # GC peaks are max-merged gauges, not counters
    gauges = registry.snapshot()["gauges"]
    assert gauges["gc.peak_live_transactions"] == (
        result.gc_stats.peak_live_transactions
    )


def test_velodrome_counters_byte_match_legacy_stats(registry):
    spec = runner.initial_spec(WORKLOAD)
    result = runner.run_velodrome(WORKLOAD, spec, seed=0)
    counters = registry.snapshot()["counters"]
    _assert_stats_match(counters, "velodrome", result.stats)
    assert (
        counters["velodrome.engine_search_visits"]
        == result.stats.engine_search_visits
        == counters.get("velodrome.engine.search_visits", 0)
    )


def test_icd_engine_search_visits_reads_through():
    spec = runner.initial_spec(WORKLOAD)
    checker = DoubleChecker(spec)
    result = checker.run_single(build(WORKLOAD), runner.make_scheduler(0))
    stats = result.icd_stats
    assert stats.engine is not None
    assert stats.engine_search_visits == stats.engine.search_visits


def test_icd_engine_search_visits_zero_without_engine():
    spec = runner.initial_spec(WORKLOAD)
    checker = DoubleChecker(spec, use_engine=False)
    result = checker.run_single(build(WORKLOAD), runner.make_scheduler(0))
    assert result.icd_stats.engine is None
    assert result.icd_stats.engine_search_visits == 0


def test_velodrome_engine_search_visits_reads_through():
    spec = runner.initial_spec(WORKLOAD)
    checker = VelodromeChecker(spec)
    result = checker.run(build(WORKLOAD), runner.make_scheduler(0))
    assert result.stats.engine_search_visits == (
        0 if result.stats.engine is None else result.stats.engine.search_visits
    )


def test_stats_with_linked_engine_survive_pickling():
    """CellPool ships results across processes; the linked engine stats
    must pickle with the dataclass."""
    import pickle

    spec = runner.initial_spec(WORKLOAD)
    result = runner.run_single(WORKLOAD, spec, seed=0)
    clone = pickle.loads(pickle.dumps(result.icd_stats))
    assert clone.engine_search_visits == result.icd_stats.engine_search_visits


def test_disabled_mode_records_nothing():
    use_registry(None)
    spec = runner.initial_spec(WORKLOAD)
    result = runner.run_single(WORKLOAD, spec, seed=0)
    assert result.execution.steps > 0
    assert recorder().snapshot()["counters"] == {}
