"""The metrics registry: counters, gauges, histograms, modes, merging."""

import pickle
from dataclasses import dataclass, field

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    MODE_COUNTERS,
    MODE_FULL,
    MODE_OFF,
    NOOP,
    NoopSpan,
    configure,
    publish_stats,
    recorder,
    use_registry,
)


@pytest.fixture(autouse=True)
def restore_recorder():
    previous = recorder()
    yield
    use_registry(previous)


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
def test_histogram_buckets_and_summary():
    h = Histogram(bounds=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 100.0):
        h.observe(value)
    # <=1.0, <=10.0, overflow
    assert h.counts == [2, 1, 1]
    assert h.count == 4
    assert h.total == pytest.approx(106.5)
    assert h.min == 0.5
    assert h.max == 100.0


def test_histogram_merge_adds_bucketwise():
    a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(1.0,))
    a.observe(0.5)
    b.observe(2.0)
    b.observe(0.1)
    a.merge_dict(b.to_dict())
    assert a.counts == [2, 1]
    assert a.count == 3
    assert a.min == 0.1
    assert a.max == 2.0


def test_histogram_merge_rejects_different_bounds():
    a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(2.0,))
    with pytest.raises(ValueError):
        a.merge_dict(b.to_dict())


def test_histogram_merge_into_empty_preserves_extrema():
    a = Histogram()
    b = Histogram()
    b.observe(3.0)
    a.merge_dict(b.to_dict())
    assert (a.min, a.max) == (3.0, 3.0)


# ----------------------------------------------------------------------
# registry basics
# ----------------------------------------------------------------------
def test_registry_rejects_off_mode():
    with pytest.raises(ValueError):
        MetricsRegistry(MODE_OFF)
    with pytest.raises(ValueError):
        MetricsRegistry("bogus")


def test_counters_gauges_histograms():
    reg = MetricsRegistry(MODE_COUNTERS)
    reg.inc("a")
    reg.inc("a", 4)
    reg.gauge_set("g", 2.0)
    reg.gauge_set("g", 1.0)
    reg.gauge_max("peak", 3.0)
    reg.gauge_max("peak", 1.0)
    reg.observe("t", 0.5)
    assert reg.counters["a"] == 5
    assert reg.gauges["g"] == 1.0  # set overwrites
    assert reg.gauges["peak"] == 3.0  # max keeps the high-water mark
    assert reg.histograms["t"].count == 1


def test_events_only_recorded_in_full_mode():
    counters = MetricsRegistry(MODE_COUNTERS)
    counters.emit_event("x", "cat", ts=0.0, dur=1.0)
    assert counters.events == []
    full = MetricsRegistry(MODE_FULL)
    full.emit_event("x", "cat", ts=0.0, dur=1.0, args={"k": 1})
    assert full.events == [
        {"name": "x", "cat": "cat", "ts": 0.0, "dur": 1.0,
         "pid": full.pid, "args": {"k": 1}}
    ]


def test_snapshot_is_sorted_and_picklable():
    reg = MetricsRegistry(MODE_FULL)
    reg.inc("zz")
    reg.inc("aa")
    reg.observe("t", 0.1)
    reg.emit_event("e", "c", ts=0.0, dur=0.1)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["aa", "zz"]
    assert snap["histograms"]["t"]["bounds"] == list(DEFAULT_BUCKETS)
    assert pickle.loads(pickle.dumps(snap)) == snap


def test_merge_reproduces_serial_counters():
    parts = []
    for value in (3, 4):
        reg = MetricsRegistry(MODE_COUNTERS)
        reg.inc("steps", value)
        reg.gauge_max("peak", float(value))
        reg.observe("t", value / 10.0)
        parts.append(reg.snapshot())
    merged = MetricsRegistry(MODE_COUNTERS)
    for part in parts:
        merged.merge(part)
    assert merged.counters["steps"] == 7
    assert merged.gauges["peak"] == 4.0
    assert merged.histograms["t"].count == 2
    # merge order does not change counter totals
    reordered = MetricsRegistry(MODE_COUNTERS)
    for part in reversed(parts):
        reordered.merge(part)
    assert reordered.snapshot()["counters"] == merged.snapshot()["counters"]


def test_merge_drops_events_in_counters_mode():
    full = MetricsRegistry(MODE_FULL)
    full.emit_event("e", "c", ts=0.0, dur=0.1)
    counters = MetricsRegistry(MODE_COUNTERS)
    counters.merge(full.snapshot())
    assert counters.events == []
    other_full = MetricsRegistry(MODE_FULL)
    other_full.merge(full.snapshot())
    assert len(other_full.events) == 1


# ----------------------------------------------------------------------
# the null recorder and the process-global active recorder
# ----------------------------------------------------------------------
def test_noop_recorder_is_inert():
    assert NOOP.enabled is False
    assert NOOP.mode == MODE_OFF
    NOOP.inc("x")
    NOOP.observe("x", 1.0)
    NOOP.merge({"counters": {"x": 1}})
    assert NOOP.snapshot()["counters"] == {}
    assert isinstance(NOOP.span("x"), NoopSpan)
    # the span is shared: no allocation per disabled span
    assert NOOP.span("x") is NOOP.span("y")


def test_use_registry_returns_previous():
    reg = MetricsRegistry(MODE_COUNTERS)
    previous = use_registry(reg)
    try:
        assert recorder() is reg
    finally:
        use_registry(previous)
    assert recorder() is previous
    assert use_registry(None) is previous
    assert recorder() is NOOP


def test_configure_modes():
    assert configure(MODE_OFF) is NOOP
    reg = configure(MODE_COUNTERS)
    assert isinstance(reg, MetricsRegistry)
    assert recorder() is reg
    with pytest.raises(ValueError):
        configure("bogus")


# ----------------------------------------------------------------------
# dataclass publication
# ----------------------------------------------------------------------
@dataclass
class _InnerStats:
    nested: int = 9


@dataclass
class _FakeStats:
    visits: int = 7
    peak_live: int = 5
    enabled_flag: bool = True
    ratio: float = 0.5
    per_kind: dict = field(default_factory=lambda: {"read": 2, "write": 3})
    engine: _InnerStats = None


def test_publish_stats_counters_gauges_and_dicts():
    reg = MetricsRegistry(MODE_COUNTERS)
    publish_stats(reg, "fake", _FakeStats(), gauges=("peak_live",))
    assert reg.counters["fake.visits"] == 7
    assert reg.gauges["fake.peak_live"] == 5
    assert reg.counters["fake.per_kind.read"] == 2
    assert reg.counters["fake.per_kind.write"] == 3
    # bools, floats, and nested stats objects are skipped
    assert "fake.enabled_flag" not in reg.counters
    assert "fake.ratio" not in reg.counters
    assert "fake.engine" not in reg.counters


def test_publish_stats_noop_target_is_free():
    publish_stats(NOOP, "fake", _FakeStats())  # must not raise
