"""Phase spans: timing, nesting, and event emission."""

import pytest

from repro.obs.registry import (
    MetricsRegistry,
    MODE_COUNTERS,
    MODE_FULL,
    NoopSpan,
    recorder,
    use_registry,
)
from repro.obs.spans import Span, phase


@pytest.fixture(autouse=True)
def restore_recorder():
    previous = recorder()
    yield
    use_registry(previous)


def test_span_records_histogram_and_counter():
    reg = MetricsRegistry(MODE_COUNTERS)
    with reg.span("work"):
        pass
    with reg.span("work"):
        pass
    assert reg.counters["phase.work.count"] == 2
    histogram = reg.histograms["phase.work.seconds"]
    assert histogram.count == 2
    assert histogram.total >= 0.0
    # counters mode records no events
    assert reg.events == []


def test_full_mode_emits_event_with_depth():
    reg = MetricsRegistry(MODE_FULL)
    with reg.span("outer", category="test"):
        with reg.span("inner", extra="x"):
            pass
    # inner exits first
    inner, outer = reg.events
    assert inner["name"] == "inner"
    assert inner["args"]["depth"] == 2
    assert inner["args"]["extra"] == "x"
    assert outer["name"] == "outer"
    assert outer["cat"] == "test"
    assert outer["args"]["depth"] == 1
    # inner is contained within outer on the timeline
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9


def test_span_records_on_exception():
    reg = MetricsRegistry(MODE_COUNTERS)
    with pytest.raises(RuntimeError):
        with reg.span("broken"):
            raise RuntimeError("boom")
    assert reg.counters["phase.broken.count"] == 1


def test_phase_uses_active_recorder():
    reg = MetricsRegistry(MODE_COUNTERS)
    previous = use_registry(reg)
    try:
        with phase("p"):
            pass
    finally:
        use_registry(previous)
    assert reg.counters["phase.p.count"] == 1


def test_phase_is_noop_when_disabled():
    use_registry(None)
    span = phase("anything", junk=1)
    assert isinstance(span, NoopSpan)
    with span:
        pass  # must not record or raise


def test_span_is_reusable_object():
    reg = MetricsRegistry(MODE_COUNTERS)
    span = Span(reg, "named")
    with span:
        pass
    assert reg.counters["phase.named.count"] == 1
