"""Exporters: metrics JSON, JSONL, Chrome trace, text summary."""

import json

from repro.obs.export import (
    chrome_trace_document,
    metrics_document,
    render_summary,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.registry import MetricsRegistry, MODE_FULL


def _sample_registry():
    # pinned trace id so two calls build snapshot-identical registries
    reg = MetricsRegistry(MODE_FULL, trace_id="feedc0ffee000001")
    reg.inc("icd.edges", 12)
    reg.gauge_max("gc.peak", 5)
    reg.observe("phase.run.seconds", 0.25)
    reg.emit_event("run", "executor", ts=0.001, dur=0.25, args={"depth": 1})
    return reg


def test_metrics_document_shape():
    doc = metrics_document(_sample_registry())
    assert doc["mode"] == MODE_FULL
    assert doc["counters"] == {"icd.edges": 12}
    assert doc["gauges"] == {"gc.peak": 5}
    summary = doc["histograms"]["phase.run.seconds"]
    assert summary == {"count": 1, "total": 0.25, "min": 0.25, "max": 0.25}


def test_exporters_accept_snapshot_dicts():
    snapshot = _sample_registry().snapshot()
    assert metrics_document(snapshot) == metrics_document(_sample_registry())


def test_write_metrics_json_roundtrip(tmp_path):
    path = tmp_path / "metrics.json"
    write_metrics_json(str(path), _sample_registry())
    doc = json.loads(path.read_text())
    assert doc["counters"]["icd.edges"] == 12


def test_write_jsonl_one_event_per_line(tmp_path):
    reg = _sample_registry()
    reg.emit_event("second", "executor", ts=0.3, dur=0.1)
    path = tmp_path / "events.jsonl"
    write_jsonl(str(path), reg)
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["name"] == "run"
    assert json.loads(lines[1])["name"] == "second"


def test_chrome_trace_format():
    reg = _sample_registry()
    doc = chrome_trace_document(reg)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    # one process_name metadata record per pid track
    assert [m["name"] for m in metadata] == ["process_name"]
    assert metadata[0]["pid"] == reg.pid
    (event,) = complete
    # seconds -> microseconds
    assert event["ts"] == 1000.0
    assert event["dur"] == 250000.0
    assert event["pid"] == event["tid"] == reg.pid
    assert event["args"]["depth"] == 1


def test_chrome_trace_multiple_pids_get_tracks():
    snapshot = {
        "events": [
            {"name": "a", "cat": "c", "ts": 0.0, "dur": 0.1, "pid": 1},
            {"name": "b", "cat": "c", "ts": 0.0, "dur": 0.1, "pid": 2},
            {"name": "c", "cat": "c", "ts": 0.2, "dur": 0.1, "pid": 1},
        ]
    }
    doc = chrome_trace_document(snapshot)
    metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert sorted(m["pid"] for m in metadata) == [1, 2]


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), _sample_registry())
    doc = json.loads(path.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_render_summary_sections():
    text = render_summary(_sample_registry())
    assert "icd.edges" in text
    assert "gc.peak" in text
    assert "phase.run.seconds" in text
    assert "1 span event(s)" in text


def test_render_summary_top_truncates():
    reg = MetricsRegistry(MODE_FULL)
    reg.inc("small", 1)
    reg.inc("large", 100)
    text = render_summary(reg, top=1)
    assert "large" in text
    assert "small" not in text


def test_render_summary_empty():
    reg = MetricsRegistry(MODE_FULL)
    assert "no metrics" in render_summary(reg)


# ----------------------------------------------------------------------
# distributed-trace features: flows, labels, trace id
# ----------------------------------------------------------------------
def test_chrome_trace_flow_events_pass_through():
    reg = MetricsRegistry(MODE_FULL, trace_id="feedc0ffee000002")
    reg.emit_event("send", "shard", ts=0.0, dur=0.010)
    reg.emit_flow("shard.chunk", 0.002, 7, "s")
    reg.emit_flow("shard.chunk", 0.005, 7, "f")
    doc = chrome_trace_document(reg)
    flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
    assert [(e["ph"], e["id"]) for e in flows] == [("s", 7), ("f", 7)]
    start, finish = flows
    assert start["ts"] == 2000.0 and finish["ts"] == 5000.0
    # the arrow head binds to the enclosing slice, the tail does not
    assert finish["bp"] == "e" and "bp" not in start
    assert doc["otherData"]["trace_id"] == "feedc0ffee000002"


def test_chrome_trace_process_labels():
    snapshot = {
        "trace_id": "feedc0ffee000003",
        "labels": {1: "coordinator", 2: "shard-log-0"},
        "events": [
            {"name": "a", "cat": "c", "ts": 0.0, "dur": 0.1, "pid": 1},
            {"name": "b", "cat": "c", "ts": 0.0, "dur": 0.1, "pid": 2},
            {"name": "c", "cat": "c", "ts": 0.0, "dur": 0.1, "pid": 3},
        ],
    }
    doc = chrome_trace_document(snapshot)
    names = {
        m["pid"]: m["args"]["name"]
        for m in doc["traceEvents"]
        if m["ph"] == "M"
    }
    assert names[1] == "coordinator"
    assert names[2] == "shard-log-0"
    assert names[3] == "doublechecker worker 3"  # unlabeled fallback


def test_metrics_document_carries_trace_id():
    doc = metrics_document(_sample_registry())
    assert doc["trace_id"] == "feedc0ffee000001"


# ----------------------------------------------------------------------
# atomic write-then-rename
# ----------------------------------------------------------------------
def test_failed_export_leaves_existing_file_intact(tmp_path):
    path = tmp_path / "metrics.json"
    path.write_text('{"previous": true}\n')
    # a set is not JSON-serializable, so the dump fails mid-body
    bad_snapshot = {"counters": {"x": {1, 2}}, "gauges": {}, "histograms": {}}
    try:
        write_metrics_json(str(path), bad_snapshot)
    except TypeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected the serialization to fail")
    assert json.loads(path.read_text()) == {"previous": True}
    # and the temp file was cleaned up, not left as litter
    assert [p.name for p in tmp_path.iterdir()] == ["metrics.json"]


def test_exports_leave_no_temp_litter(tmp_path):
    reg = _sample_registry()
    write_metrics_json(str(tmp_path / "m.json"), reg)
    write_chrome_trace(str(tmp_path / "t.json"), reg)
    write_jsonl(str(tmp_path / "e.jsonl"), reg)
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "e.jsonl", "m.json", "t.json",
    ]
